//! Fault injection for the serve path: a long-lived daemon must survive
//! misbehaving clients — disconnects mid-SUBMIT, over-budget declarations,
//! malformed jobs, and outright lies — answering each with its *typed*
//! wire response while continuing to serve everyone else, all within the
//! configured deadlines.

use das_core::{
    graph_fingerprint, serve, wire, Capacity, JobStatus, LoadgenConfig, ServeConfig, ServeReport,
    UniformScheduler, PROTOCOL_VERSION,
};
use das_graph::{generators, Graph};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn small_graph() -> Graph {
    generators::layered(3, 3)
}

// -- minimal test-side framing, hand-rolled so rogue clients can misbehave --

fn send_frame(stream: &mut TcpStream, kind: u8, body: &[u8]) {
    let mut buf = Vec::with_capacity(5 + body.len());
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.push(kind);
    buf.extend_from_slice(body);
    stream.write_all(&buf).expect("frame write");
}

fn recv_frame(stream: &mut TcpStream) -> (u8, Vec<u8>) {
    let mut header = [0u8; 5];
    stream.read_exact(&mut header).expect("frame header");
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("frame body");
    (header[4], body)
}

/// Connects and completes the HELLO → CAPS handshake, returning the open
/// stream plus the server's advertised tape seed.
fn handshake(addr: &str, g: &Graph) -> (TcpStream, u64) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut hello = Vec::new();
    hello.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    hello.extend_from_slice(&graph_fingerprint(g).to_le_bytes());
    send_frame(&mut s, wire::HELLO, &hello);
    let (kind, body) = recv_frame(&mut s);
    assert_eq!(kind, wire::CAPS, "expected CAPS");
    let tape_seed = u64::from_le_bytes(body[12..20].try_into().expect("8 bytes"));
    (s, tape_seed)
}

fn submit_body(
    job_id: u64,
    kind: u8,
    source: u32,
    depth: u32,
    dilation: u32,
    congestion: u64,
    payload: u32,
) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(&job_id.to_le_bytes());
    b.push(kind);
    b.extend_from_slice(&source.to_le_bytes());
    b.extend_from_slice(&depth.to_le_bytes());
    b.extend_from_slice(&dilation.to_le_bytes());
    b.extend_from_slice(&congestion.to_le_bytes());
    b.extend_from_slice(&payload.to_le_bytes());
    b
}

/// Spawns a daemon on an ephemeral port; returns its address, the stop
/// flag, and the join handle yielding the final [`ServeReport`].
fn spawn_daemon(
    g: &Graph,
    cfg: ServeConfig,
) -> (
    String,
    Arc<AtomicBool>,
    std::thread::JoinHandle<ServeReport>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let cfg = ServeConfig {
        net: cfg.net.with_stop(stop.clone()),
        ..cfg
    };
    let g = g.clone();
    let handle = std::thread::spawn(move || {
        serve(&g, &UniformScheduler::default(), listener, &cfg).expect("daemon")
    });
    (addr, stop, handle)
}

fn stop_and_join(
    stop: &Arc<AtomicBool>,
    handle: std::thread::JoinHandle<ServeReport>,
) -> ServeReport {
    stop.store(true, Ordering::SeqCst);
    handle.join().expect("daemon thread")
}

/// Happy path plus the byte-identity guarantee: a multi-client loadgen run
/// completes every job, and every returned output matches the job's local
/// alone run byte-for-byte.
#[test]
fn served_outputs_are_byte_identical_to_alone_runs() {
    let g = small_graph();
    let started = Instant::now();
    let (addr, stop, handle) = spawn_daemon(&g, ServeConfig::default());
    let lg = LoadgenConfig {
        clients: 2,
        jobs_per_client: 4,
        depth: 3,
        seed: 42,
        check: true,
        ..LoadgenConfig::default()
    };
    let report = das_core::run_loadgen(&g, &addr, &lg).expect("loadgen");
    assert_eq!(report.submitted, 8);
    assert_eq!(report.completed, 8, "all jobs must verify: {report:?}");
    assert_eq!(report.rejected, 0);
    assert_eq!(report.failed, 0);
    assert_eq!(
        report.check_mismatches, 0,
        "served bytes must match alone runs"
    );
    assert_eq!(report.outputs.len(), 8);
    let daemon = stop_and_join(&stop, handle);
    assert_eq!(daemon.admitted, 8);
    assert_eq!(daemon.completed, 8);
    assert_eq!(daemon.rejected, 0);
    assert!(daemon.batches >= 1);
    assert!(started.elapsed() < Duration::from_secs(30));
}

/// A client that dies mid-SUBMIT (frame header promising more bytes than it
/// delivers) costs only its own connection: no counter moves, and a clean
/// client on a fresh connection is served normally afterwards.
#[test]
fn disconnect_mid_submit_leaves_the_daemon_serving() {
    let g = small_graph();
    let started = Instant::now();
    let (addr, stop, handle) = spawn_daemon(&g, ServeConfig::default());
    {
        let (mut s, _) = handshake(&addr, &g);
        let mut clipped = Vec::new();
        clipped.extend_from_slice(&100u32.to_le_bytes()); // promises 100 bytes
        clipped.push(wire::SUBMIT);
        clipped.extend_from_slice(&[1, 2, 3, 4]); // delivers 4
        s.write_all(&clipped).expect("partial frame");
        // dropping s closes the stream mid-body
    }
    let lg = LoadgenConfig {
        clients: 1,
        jobs_per_client: 2,
        depth: 2,
        check: true,
        ..LoadgenConfig::default()
    };
    let report = das_core::run_loadgen(&g, &addr, &lg).expect("loadgen");
    assert_eq!(report.completed, 2);
    assert_eq!(report.check_mismatches, 0);
    let daemon = stop_and_join(&stop, handle);
    // the clipped SUBMIT was never admitted or rejected — it doesn't exist
    assert_eq!(daemon.admitted, 2);
    assert_eq!(daemon.rejected, 0);
    assert!(started.elapsed() < Duration::from_secs(30));
}

/// Over-budget declarations are refused at admission with the typed code
/// naming the violated budget and both numbers — content-free, before any
/// execution. A malformed job kind gets `MALFORMED` and the connection
/// stays usable.
#[test]
fn over_budget_and_malformed_submissions_are_rejected_typed() {
    let g = small_graph();
    let started = Instant::now();
    let capacity = Capacity {
        max_dilation: 8,
        max_congestion: 64,
        max_payload_bytes: 16,
    };
    let cfg = ServeConfig {
        capacity,
        ..ServeConfig::default()
    };
    let (addr, stop, handle) = spawn_daemon(&g, cfg);
    let (mut s, _) = handshake(&addr, &g);

    // declared payload over capacity → BUDGET_PAYLOAD with both numbers
    send_frame(&mut s, wire::SUBMIT, &submit_body(1, 0, 0, 2, 3, 4, 17));
    let (kind, body) = recv_frame(&mut s);
    assert_eq!(kind, wire::REJECTED);
    assert_eq!(u64::from_le_bytes(body[..8].try_into().unwrap()), 1);
    let code = u32::from_le_bytes(body[8..12].try_into().unwrap());
    assert_eq!(code, wire::BUDGET_PAYLOAD);
    assert_eq!(u64::from_le_bytes(body[12..20].try_into().unwrap()), 17);
    assert_eq!(u64::from_le_bytes(body[20..28].try_into().unwrap()), 16);

    // declared dilation over capacity → BUDGET_DILATION
    send_frame(&mut s, wire::SUBMIT, &submit_body(2, 0, 0, 2, 9, 4, 8));
    let (kind, body) = recv_frame(&mut s);
    assert_eq!(kind, wire::REJECTED);
    assert_eq!(
        u32::from_le_bytes(body[8..12].try_into().unwrap()),
        wire::BUDGET_DILATION
    );

    // unknown job kind → MALFORMED, and the connection still works
    send_frame(&mut s, wire::SUBMIT, &submit_body(3, 9, 0, 2, 3, 4, 8));
    let (kind, body) = recv_frame(&mut s);
    assert_eq!(kind, wire::REJECTED);
    assert_eq!(
        u32::from_le_bytes(body[8..12].try_into().unwrap()),
        wire::MALFORMED
    );
    send_frame(&mut s, wire::SUBMIT, &submit_body(4, 0, 0, 2, 3, 4, 8));
    let (kind, _) = recv_frame(&mut s);
    assert_eq!(kind, wire::ACCEPTED, "connection must survive a rejection");

    drop(s);
    let daemon = stop_and_join(&stop, handle);
    assert_eq!(daemon.rejected, 3);
    assert_eq!(daemon.admitted, 1);
    assert!(started.elapsed() < Duration::from_secs(30));
}

/// A job that under-declares its budgets passes content-free admission
/// (declared numbers fit) but is caught after execution: the measured
/// dilation/congestion exceed the declaration, so the RESULT comes back
/// `BudgetMismatch` — the declaration is trusted for admission, never for
/// the verdict.
#[test]
fn lying_declared_budget_is_caught_at_verify_not_admission() {
    let g = small_graph();
    let started = Instant::now();
    let (addr, stop, handle) = spawn_daemon(&g, ServeConfig::default());
    let (mut s, _) = handshake(&addr, &g);
    // depth-3 flood really runs depth+1 rounds; declaring dilation 1 is a lie
    send_frame(&mut s, wire::SUBMIT, &submit_body(0, 0, 0, 3, 1, 1, 8));
    let (kind, _) = recv_frame(&mut s);
    assert_eq!(
        kind,
        wire::ACCEPTED,
        "the lie passes content-free admission"
    );
    let (kind, body) = recv_frame(&mut s);
    assert_eq!(kind, wire::RESULT);
    assert_eq!(u64::from_le_bytes(body[..8].try_into().unwrap()), 0);
    assert_eq!(JobStatus::from_wire(body[8]), JobStatus::BudgetMismatch);
    drop(s);
    let daemon = stop_and_join(&stop, handle);
    assert_eq!(daemon.admitted, 1);
    assert_eq!(daemon.failed, 1, "a caught lie counts as a failed job");
    assert_eq!(daemon.completed, 0);
    assert!(started.elapsed() < Duration::from_secs(30));
}

/// A client speaking the wrong protocol version is turned away with the
/// standard typed REJECT carrying both versions.
#[test]
fn version_mismatch_is_rejected_at_hello() {
    let g = small_graph();
    let started = Instant::now();
    let (addr, stop, handle) = spawn_daemon(&g, ServeConfig::default());
    let mut s = TcpStream::connect(&addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut hello = Vec::new();
    hello.extend_from_slice(&999u32.to_le_bytes());
    hello.extend_from_slice(&graph_fingerprint(&g).to_le_bytes());
    send_frame(&mut s, wire::HELLO, &hello);
    let (kind, body) = recv_frame(&mut s);
    assert_eq!(kind, wire::REJECT);
    assert_eq!(
        u32::from_le_bytes(body[..4].try_into().unwrap()),
        wire::REJECT_VERSION
    );
    assert_eq!(
        u64::from_le_bytes(body[4..12].try_into().unwrap()),
        PROTOCOL_VERSION as u64
    );
    drop(s);
    let daemon = stop_and_join(&stop, handle);
    assert_eq!(daemon.admitted, 0);
    assert!(started.elapsed() < Duration::from_secs(30));
}
