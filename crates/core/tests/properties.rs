//! Property-based tests of the scheduling core: for *arbitrary* random
//! workloads, clean schedules (no late messages) are exactly correct and
//! causally valid.

use das_core::synthetic::{FloodBall, Prescribed, RelayChain};
use das_core::{
    verify, BlackBoxAlgorithm, DasProblem, InterleaveScheduler, Scheduler, SequentialScheduler,
    UniformScheduler,
};
use das_graph::{generators, Graph, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random mixed workload on a random connected graph.
fn random_problem(
    n: usize,
    k: usize,
    graph_seed: u64,
    workload_seed: u64,
) -> (Graph, Vec<(u32, NodeId, NodeId)>) {
    let g = generators::gnp_connected(n, 2.5 / n as f64, graph_seed);
    // random prescribed pattern material: (round, from, to) over real edges
    let mut rng = StdRng::seed_from_u64(workload_seed);
    let mut triples = Vec::new();
    let m = g.edge_count() as u32;
    for _ in 0..(3 * k) {
        let e = das_graph::EdgeId(rng.gen_range(0..m));
        let (a, b) = g.endpoints(e);
        let (from, to) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
        triples.push((rng.gen_range(0..6u32), from, to));
    }
    (g, triples)
}

fn build_algos(
    g: &Graph,
    triples: &[(u32, NodeId, NodeId)],
    k: usize,
    seed: u64,
) -> Vec<Box<dyn BlackBoxAlgorithm>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.node_count() as u32;
    (0..k as u64)
        .map(|i| match i % 3 {
            0 => {
                let chunk = triples.len() / k.max(1) + 1;
                let lo = (i as usize * chunk).min(triples.len().saturating_sub(1));
                let hi = ((i as usize + 1) * chunk).min(triples.len());
                Box::new(Prescribed::new(i, g, &triples[lo..hi.max(lo + 1)]))
                    as Box<dyn BlackBoxAlgorithm>
            }
            1 => Box::new(FloodBall::new(i, g, NodeId(rng.gen_range(0..n)), 4)),
            _ => {
                // a short random walk route made of adjacent hops
                let mut route = vec![NodeId(rng.gen_range(0..n))];
                for _ in 0..5 {
                    let cur = *route.last().expect("non-empty");
                    let nbrs = g.neighbors(cur);
                    let (next, _) = nbrs[rng.gen_range(0..nbrs.len())];
                    route.push(next);
                }
                Box::new(RelayChain::along(i, g, route))
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Baselines are always exactly correct, on any workload.
    #[test]
    fn baselines_always_correct(gs in 0u64..500, ws in 0u64..500, k in 1usize..7) {
        let (g, triples) = random_problem(16, k, gs, ws);
        let p = DasProblem::new(&g, build_algos(&g, &triples, k, ws), ws);
        for s in [
            Box::new(SequentialScheduler) as Box<dyn Scheduler>,
            Box::new(InterleaveScheduler),
        ] {
            let outcome = s.run(&p).unwrap();
            prop_assert_eq!(outcome.stats.late_messages, 0);
            let report = verify::against_references(&p, &outcome).unwrap();
            prop_assert!(report.all_correct(), "{} failed", s.name());
        }
    }

    /// The master invariant: if no message was late, outputs are exactly
    /// the alone-run outputs and the departure times form a causally valid
    /// simulation — for any workload and any shared seed.
    #[test]
    fn clean_schedules_are_correct_and_causal(
        gs in 0u64..300, ws in 0u64..300, seed in 0u64..50, k in 1usize..6
    ) {
        let (g, triples) = random_problem(14, k, gs, ws);
        let p = DasProblem::new(&g, build_algos(&g, &triples, k, ws), ws);
        let outcome = UniformScheduler::default().with_seed(seed).run(&p).unwrap();
        if outcome.stats.late_messages == 0 {
            let report = verify::against_references(&p, &outcome).unwrap();
            prop_assert!(report.all_correct(), "clean but wrong");
            let refs = p.references().unwrap();
            for (i, map) in outcome.departures.as_ref().unwrap().iter().enumerate() {
                prop_assert!(
                    das_pattern::verify_simulation(&g, &refs[i].pattern, map).is_ok(),
                    "clean but acausal (algorithm {i})"
                );
            }
        }
    }

    /// Measured parameters are consistent: congestion/dilation of the
    /// union equal max/sum of the parts.
    #[test]
    fn parameters_compose(gs in 0u64..300, ws in 0u64..300, k in 2usize..6) {
        let (g, triples) = random_problem(14, k, gs, ws);
        let p = DasProblem::new(&g, build_algos(&g, &triples, k, ws), ws);
        let refs = p.references().unwrap();
        let params = p.parameters().unwrap();
        let max_rounds = refs.iter().map(|r| r.pattern.rounds()).max().unwrap();
        prop_assert_eq!(params.dilation, max_rounds);
        let mut loads = vec![0u64; g.edge_count()];
        for r in refs {
            for (e, l) in r.pattern.edge_loads().into_iter().enumerate() {
                loads[e] += l;
            }
        }
        prop_assert_eq!(params.congestion, loads.into_iter().max().unwrap_or(0));
    }
}
