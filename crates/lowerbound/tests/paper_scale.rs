//! The paper's exact `n^{0.1}/n^{0.9}/n^{0.2}` scaling, instantiated at a
//! feasible size, plus distributional sanity of the sampled instances.

use das_core::DasProblem;
use das_lowerbound::{analysis, HardInstance, HardInstanceParams};

#[test]
fn paper_scaled_instance_is_well_formed() {
    let params = HardInstanceParams::paper_scaled(4096);
    let inst = HardInstance::sample(params, 1);
    let g = inst.graph();
    assert_eq!(g.node_count(), params.node_count());
    // every group node has degree exactly 2 (its two spine edges)
    let grp = das_graph::generators::layered_group(params.layers, params.eta, 1, 0);
    assert_eq!(g.degree(grp), 2);
    // spine v_0 connects to all of U_1
    assert_eq!(
        g.degree(das_graph::generators::layered_spine(0)),
        params.eta
    );
    // measured parameters agree with the closed-form accounting
    let problem = DasProblem::new(g, inst.algorithms(), 3);
    let measured = problem.parameters().unwrap();
    assert_eq!(measured.congestion, inst.congestion());
    assert_eq!(measured.dilation, inst.dilation());
}

#[test]
fn congestion_concentrates_around_kp() {
    // E[congestion contribution per member] = k * p; the max over eta
    // members sits within a small factor of the mean (Chernoff)
    let params = HardInstanceParams::paper_scaled(4096);
    let inst = HardInstance::sample(params, 2);
    let mean = params.k as f64 * params.p;
    let c = inst.congestion() as f64;
    assert!(
        c >= mean && c <= mean * 5.0 + 10.0,
        "congestion {c} vs mean {mean}"
    );
}

#[test]
fn certificate_behaves_at_paper_scale() {
    let params = HardInstanceParams::paper_scaled(4096);
    let inst = HardInstance::sample(params, 3);
    let d = inst.dilation();
    // capacity 1 phases at dilation-many phases: overload near-certain
    // (many algorithms share members with p = n^{-0.1} ≈ 0.43)
    let tight = analysis::pattern_failure_rate(&inst, 1, d, 30, 4);
    assert!(tight > 0.9, "tight-budget failure rate {tight}");
    // huge capacity: no overload possible
    let loose = analysis::pattern_failure_rate(&inst, params.k as u32, d, 30, 4);
    assert_eq!(loose, 0.0);
}
