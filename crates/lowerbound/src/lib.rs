//! # das-lowerbound
//!
//! The Section 3 lower bound, made executable.
//!
//! Theorem 3.1 shows — by the probabilistic method over a family of random
//! instances on a layered network (Figure 2) — that some DAS instances
//! admit **no** schedule of length
//! `o(congestion + dilation · log n / log log n)`: any schedule induces a
//! *crossing pattern* (which layer is crossed in which phase), some
//! layer-phase pair is heavily loaded, and anti-concentration forces some
//! single edge of that layer over the phase capacity.
//!
//! This crate provides:
//!
//! * [`HardInstance`] — sampler for the paper's instance distribution
//!   (both paper-scaled `n^{0.1}/n^{0.9}/n^{0.2}` parameters and free
//!   parameters for sweeps), exposing the instance as schedulable
//!   black-box algorithms;
//! * [`analysis`] — instance parameters, per-(layer, phase) loads, and the
//!   empirical anti-concentration certificate (the failure probability of
//!   crossing patterns at a given budget);
//! * [`search`] — a greedy crossing-pattern scheduler that upper-bounds
//!   the optimal schedule length, so measured `OPT̂ / (congestion +
//!   dilation)` ratios can be tracked as `n` grows.

#![warn(missing_docs)]

pub mod analysis;
pub mod search;

mod instance;

pub use instance::{HardInstance, HardInstanceParams};
