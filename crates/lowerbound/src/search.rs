//! Schedule search: greedy crossing-pattern construction that
//! upper-bounds the optimal schedule length for hard instances.

use crate::instance::HardInstance;

/// Result of a greedy schedule construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GreedyResult {
    /// Rounds per phase used.
    pub phase_rounds: u32,
    /// Phases consumed.
    pub phases_used: u32,
    /// Total schedule length in rounds (`phases_used · phase_rounds · 2`:
    /// a crossing needs its two hops, scheduled in consecutive
    /// half-phases).
    pub length: u64,
}

/// Greedy earliest-fit: algorithms are processed in order; each crossing
/// of layer `j` is assigned the earliest phase (not before the previous
/// layer's phase) in which every member edge still has capacity
/// (`phase_rounds` messages per edge per phase).
///
/// This is a *valid* schedule (so an upper bound on OPT): within a phase
/// of `2·phase_rounds` rounds, each assigned crossing can perform both of
/// its hops because each of its edges carries at most `phase_rounds`
/// messages.
#[allow(clippy::needless_range_loop)]
pub fn greedy_schedule(inst: &HardInstance, phase_rounds: u32) -> GreedyResult {
    assert!(phase_rounds >= 1);
    let params = inst.params();
    // capacity[layer][member][phase] — grown on demand
    let mut used: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); params.eta]; params.layers];
    let mut max_phase = 0u32;
    for a in 0..params.k {
        let mut t = 0u32;
        // a phase of 2·phase_rounds rounds fits at most `phase_rounds`
        // sequential crossings of one algorithm
        let mut crossings_here = 0u32;
        for j in 0..params.layers {
            'find: loop {
                let room = crossings_here < phase_rounds;
                let fits = room
                    && inst.members(a, j).iter().all(|&m| {
                        let col = &used[j][m as usize];
                        col.get(t as usize).copied().unwrap_or(0) < phase_rounds
                    });
                if fits {
                    for &m in inst.members(a, j) {
                        let col = &mut used[j][m as usize];
                        if col.len() <= t as usize {
                            col.resize(t as usize + 1, 0);
                        }
                        col[t as usize] += 1;
                    }
                    crossings_here += 1;
                    max_phase = max_phase.max(t);
                    break 'find;
                }
                t += 1;
                crossings_here = 0;
            }
        }
    }
    GreedyResult {
        phase_rounds,
        phases_used: max_phase + 1,
        length: (max_phase as u64 + 1) * phase_rounds as u64 * 2,
    }
}

/// Minimizes the greedy length over a range of phase granularities,
/// returning the best schedule found — the empirical `OPT̂` upper bound.
pub fn best_greedy(inst: &HardInstance, max_phase_rounds: u32) -> GreedyResult {
    (1..=max_phase_rounds.max(1))
        .map(|r| greedy_schedule(inst, r))
        .min_by_key(|g| g.length)
        .expect("non-empty range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::HardInstanceParams;

    #[test]
    fn greedy_respects_capacity_and_order() {
        let inst = HardInstance::sample(HardInstanceParams::custom(3, 10, 8, 0.3), 1);
        let g = greedy_schedule(&inst, 2);
        assert!(g.phases_used >= 1);
        assert_eq!(g.length, g.phases_used as u64 * 4);
    }

    #[test]
    fn greedy_length_at_least_trivial_bound() {
        let inst = HardInstance::sample(HardInstanceParams::custom(4, 8, 12, 0.4), 2);
        let g = best_greedy(&inst, 8);
        let c = inst.congestion();
        let d = inst.dilation() as u64;
        assert!(
            g.length as f64 >= (c.max(d)) as f64,
            "schedule {} below the trivial bound {}",
            g.length,
            c.max(d)
        );
    }

    #[test]
    fn more_capacity_fewer_phases() {
        let inst = HardInstance::sample(HardInstanceParams::custom(4, 8, 16, 0.4), 3);
        let g1 = greedy_schedule(&inst, 1);
        let g4 = greedy_schedule(&inst, 4);
        assert!(g4.phases_used <= g1.phases_used);
    }

    #[test]
    fn single_algorithm_needs_dilation() {
        let inst = HardInstance::sample(HardInstanceParams::custom(5, 10, 1, 0.3), 4);
        let g = greedy_schedule(&inst, 1);
        // one algorithm, one crossing per phase: exactly dilation rounds
        assert_eq!(g.phases_used, 5);
        assert_eq!(g.length, inst.dilation() as u64);
    }
}
