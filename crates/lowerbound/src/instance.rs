//! The Figure 2 hard-instance distribution.

use das_core::synthetic::Prescribed;
use das_core::BlackBoxAlgorithm;
use das_graph::{generators, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the layered hard-instance family of Section 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HardInstanceParams {
    /// Number of layers `L` (paper: `n^{0.1}`).
    pub layers: usize,
    /// Group size `η = |U_i|` (paper: `n^{0.9}`).
    pub eta: usize,
    /// Number of algorithms `k` (paper: `n^{0.2}`).
    pub k: usize,
    /// Per-node membership probability for the sets `S_j`
    /// (paper: `n^{-0.1}`, so each algorithm uses each edge with that
    /// probability and `E[congestion] = k · p`).
    pub p: f64,
}

impl HardInstanceParams {
    /// The paper's exact scaling for a target network size `n`:
    /// `L = ⌈n^{0.1}⌉`, `η = ⌈n^{0.9}⌉`, `k = ⌈n^{0.2}⌉`, `p = n^{-0.1}`.
    pub fn paper_scaled(n: usize) -> Self {
        let nf = n.max(2) as f64;
        HardInstanceParams {
            layers: nf.powf(0.1).ceil() as usize,
            eta: nf.powf(0.9).ceil() as usize,
            k: nf.powf(0.2).ceil() as usize,
            p: nf.powf(-0.1),
        }
    }

    /// Free parameters (for sweeps where the paper's scaling would make
    /// `η` impractically large before the log factors become visible).
    pub fn custom(layers: usize, eta: usize, k: usize, p: f64) -> Self {
        assert!(layers > 0 && eta > 0 && k > 0, "sizes must be positive");
        assert!(p > 0.0 && p <= 1.0, "p must be a probability");
        HardInstanceParams { layers, eta, k, p }
    }

    /// Nodes of the layered network these parameters induce.
    pub fn node_count(&self) -> usize {
        (self.layers + 1) + self.layers * self.eta
    }
}

/// A sampled instance: the layered network plus, per algorithm and layer,
/// the subset `S_j ⊆ U_j` the algorithm routes through.
#[derive(Clone, Debug)]
pub struct HardInstance {
    params: HardInstanceParams,
    graph: Graph,
    /// `members[a][j]` = indices (within `U_{j+1}`) of the group nodes
    /// algorithm `a` uses when crossing layer `j+1`.
    members: Vec<Vec<Vec<u32>>>,
}

impl HardInstance {
    /// Samples an instance from the distribution. Every `S_j` is forced
    /// non-empty (resampling the empty outcome, as the paper's
    /// `|S_j| = Θ(η p)` concentration implicitly assumes).
    pub fn sample(params: HardInstanceParams, seed: u64) -> Self {
        let graph = generators::layered(params.layers, params.eta);
        let mut rng = StdRng::seed_from_u64(seed);
        let members = (0..params.k)
            .map(|_| {
                (0..params.layers)
                    .map(|_| loop {
                        let s: Vec<u32> = (0..params.eta as u32)
                            .filter(|_| rng.gen_bool(params.p))
                            .collect();
                        if !s.is_empty() {
                            break s;
                        }
                    })
                    .collect()
            })
            .collect();
        HardInstance {
            params,
            graph,
            members,
        }
    }

    /// The parameters.
    pub fn params(&self) -> &HardInstanceParams {
        &self.params
    }

    /// The layered network.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The group members algorithm `a` uses in layer `j` (0-based layer).
    pub fn members(&self, a: usize, j: usize) -> &[u32] {
        &self.members[a][j]
    }

    /// Node id of the `m`-th member of `U_{j+1}` (0-based layer `j`).
    pub fn group_node(&self, j: usize, m: u32) -> NodeId {
        generators::layered_group(self.params.layers, self.params.eta, j + 1, m as usize)
    }

    /// The dilation of every algorithm in the family: `2 · layers`
    /// (+1 absorption round in the black-box encoding).
    pub fn dilation(&self) -> u32 {
        2 * self.params.layers as u32
    }

    /// The exact congestion of the sampled instance: each group node `u`
    /// of layer `j` loads both its edges once per algorithm whose `S_j`
    /// contains it.
    pub fn congestion(&self) -> u64 {
        let mut best = 0u64;
        for j in 0..self.params.layers {
            let mut count = vec![0u64; self.params.eta];
            for a in 0..self.params.k {
                for &m in &self.members[a][j] {
                    count[m as usize] += 1;
                }
            }
            best = best.max(count.into_iter().max().unwrap_or(0));
        }
        best
    }

    /// The instance as schedulable black boxes: algorithm `a` sends
    /// `v_{j} → S_{j+1}` in round `2j` and `S_{j+1} → v_{j+1}` in round
    /// `2j + 1` (the paper's two-rounds-per-layer format).
    pub fn algorithms(&self) -> Vec<Box<dyn BlackBoxAlgorithm>> {
        let l = self.params.layers;
        (0..self.params.k)
            .map(|a| {
                let mut triples = Vec::new();
                for j in 0..l {
                    let vj = generators::layered_spine(j);
                    let vj1 = generators::layered_spine(j + 1);
                    for &m in &self.members[a][j] {
                        let u = self.group_node(j, m);
                        triples.push((2 * j as u32, vj, u));
                        triples.push((2 * j as u32 + 1, u, vj1));
                    }
                }
                Box::new(Prescribed::new(a as u64, &self.graph, &triples))
                    as Box<dyn BlackBoxAlgorithm>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_core::DasProblem;

    #[test]
    fn paper_scaling() {
        let p = HardInstanceParams::paper_scaled(1024);
        assert_eq!(p.layers, 2);
        assert_eq!(p.k, 4);
        assert!(p.eta >= 512);
        assert!((p.p - 1024f64.powf(-0.1)).abs() < 1e-12);
    }

    #[test]
    fn sampled_sets_look_binomial() {
        let params = HardInstanceParams::custom(4, 200, 10, 0.1);
        let inst = HardInstance::sample(params, 1);
        for a in 0..10 {
            for j in 0..4 {
                let s = inst.members(a, j).len();
                assert!(
                    (1..=60).contains(&s),
                    "|S| = {s} looks wrong for η=200, p=0.1"
                );
            }
        }
    }

    #[test]
    fn congestion_matches_problem_parameters() {
        let params = HardInstanceParams::custom(3, 30, 8, 0.2);
        let inst = HardInstance::sample(params, 7);
        let problem = DasProblem::new(inst.graph(), inst.algorithms(), 3);
        let measured = problem.parameters().unwrap();
        assert_eq!(measured.congestion, inst.congestion());
        // measured dilation counts send rounds only (the black box adds
        // one silent absorption round on top)
        assert_eq!(measured.dilation, inst.dilation());
    }

    #[test]
    fn expected_congestion_near_kp() {
        let params = HardInstanceParams::custom(2, 500, 40, 0.1);
        let inst = HardInstance::sample(params, 3);
        let c = inst.congestion() as f64;
        let mean = 40.0 * 0.1;
        assert!(c >= mean && c < mean * 4.0, "congestion {c} vs mean {mean}");
    }

    #[test]
    fn deterministic_sampling() {
        let params = HardInstanceParams::custom(3, 50, 5, 0.15);
        let a = HardInstance::sample(params, 9);
        let b = HardInstance::sample(params, 9);
        for i in 0..5 {
            for j in 0..3 {
                assert_eq!(a.members(i, j), b.members(i, j));
            }
        }
    }
}
