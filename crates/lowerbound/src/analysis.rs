//! The Theorem 3.1 load and anti-concentration analysis, computed on
//! sampled instances.

use crate::instance::HardInstance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A *crossing pattern* for one algorithm: the phase in which each layer
/// is crossed (non-decreasing). The paper's proof quantifies over all such
/// patterns.
pub type CrossingPattern = Vec<u32>;

/// Samples a uniformly random non-decreasing crossing pattern over
/// `num_phases` phases (the stars-and-bars objects counted in the proof).
pub fn random_crossing_pattern(
    layers: usize,
    num_phases: u32,
    rng: &mut StdRng,
) -> CrossingPattern {
    // sample `layers` phase values and sort them
    let mut phases: Vec<u32> = (0..layers).map(|_| rng.gen_range(0..num_phases)).collect();
    phases.sort_unstable();
    phases
}

/// Whether a joint crossing pattern (one per algorithm) overloads some
/// edge in some phase: a phase of `phase_rounds` rounds can carry at most
/// `phase_rounds` messages over one edge, and an algorithm crossing layer
/// `j` in phase `t` puts one message on each edge adjacent to its members
/// of `U_j` — so the per-(layer, phase) *edge* load is the number of
/// algorithms crossing that layer in that phase that use that member.
#[allow(clippy::needless_range_loop)]
pub fn pattern_overloads(
    inst: &HardInstance,
    patterns: &[CrossingPattern],
    phase_rounds: u32,
    num_phases: u32,
) -> bool {
    let params = inst.params();
    // An edge can carry `phase_rounds` messages per phase; each crossing
    // puts 2 messages on each member's two edges (in and out), but the two
    // messages go over *different* edges — 1 message per edge per crossing.
    for j in 0..params.layers {
        // count[member][phase]
        let mut count = vec![0u32; params.eta * num_phases as usize];
        for (a, pattern) in patterns.iter().enumerate() {
            let t = pattern[j] as usize;
            for &m in inst.members(a, j) {
                let c = &mut count[m as usize * num_phases as usize + t];
                *c += 1;
                if *c > phase_rounds {
                    return true;
                }
            }
        }
    }
    false
}

/// The paper's per-(layer, phase) load `L(j, t)`: the number of algorithms
/// crossing layer `j` in phase `t` under the given joint pattern.
pub fn layer_phase_loads(
    inst: &HardInstance,
    patterns: &[CrossingPattern],
    num_phases: u32,
) -> Vec<Vec<u32>> {
    let layers = inst.params().layers;
    let mut load = vec![vec![0u32; num_phases as usize]; layers];
    for pattern in patterns {
        for (j, &t) in pattern.iter().enumerate() {
            load[j][t as usize] += 1;
        }
    }
    load
}

/// Empirical certificate for Theorem 3.1: the fraction of sampled joint
/// crossing patterns that overload some edge, at a schedule budget of
/// `num_phases` phases of `phase_rounds` rounds. The theorem's
/// union-bound argument needs this to be overwhelmingly close to 1 when
/// `num_phases · phase_rounds = o(congestion + dilation · log n / log log
/// n)`.
pub fn pattern_failure_rate(
    inst: &HardInstance,
    phase_rounds: u32,
    num_phases: u32,
    trials: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let k = inst.params().k;
    let layers = inst.params().layers;
    let mut failures = 0usize;
    for _ in 0..trials {
        let patterns: Vec<CrossingPattern> = (0..k)
            .map(|_| random_crossing_pattern(layers, num_phases, &mut rng))
            .collect();
        if pattern_overloads(inst, &patterns, phase_rounds, num_phases) {
            failures += 1;
        }
    }
    failures as f64 / trials.max(1) as f64
}

/// The paper's benchmark quantities for an instance: `(congestion,
/// dilation, trivial lower bound C+D, the log-factor target
/// (C + D·ln n / ln ln n))`.
pub fn targets(inst: &HardInstance) -> (u64, u32, u64, u64) {
    let c = inst.congestion();
    let d = inst.dilation();
    let n = inst.graph().node_count().max(3) as f64;
    let lnln = n.ln().ln().max(1.0);
    let target = c + ((d as f64) * n.ln() / lnln).ceil() as u64;
    (c, d, c + d as u64, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::HardInstanceParams;

    fn small_instance(seed: u64) -> HardInstance {
        HardInstance::sample(HardInstanceParams::custom(4, 40, 12, 0.2), seed)
    }

    #[test]
    fn crossing_patterns_are_sorted_and_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let p = random_crossing_pattern(6, 5, &mut rng);
            assert_eq!(p.len(), 6);
            assert!(p.windows(2).all(|w| w[0] <= w[1]));
            assert!(p.iter().all(|&t| t < 5));
        }
    }

    #[test]
    fn loads_sum_to_k_per_layer() {
        let inst = small_instance(2);
        let mut rng = StdRng::seed_from_u64(3);
        let patterns: Vec<_> = (0..12)
            .map(|_| random_crossing_pattern(4, 6, &mut rng))
            .collect();
        let loads = layer_phase_loads(&inst, &patterns, 6);
        for row in &loads {
            let total: u32 = row.iter().sum();
            assert_eq!(total, 12);
        }
    }

    #[test]
    fn generous_budget_never_overloads() {
        let inst = small_instance(4);
        // phase capacity k: even if all algorithms pile onto one phase and
        // one member, capacity suffices
        let rate = pattern_failure_rate(&inst, 12, 4, 50, 5);
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn tight_budget_overloads_often() {
        // eta small and p high: members collide constantly; with capacity 1
        // per phase and few phases, overload is near-certain
        let inst = HardInstance::sample(HardInstanceParams::custom(4, 6, 12, 0.5), 6);
        let rate = pattern_failure_rate(&inst, 1, 3, 50, 7);
        assert!(rate > 0.9, "failure rate {rate}");
    }

    #[test]
    fn failure_rate_monotone_in_budget() {
        let inst = HardInstance::sample(HardInstanceParams::custom(4, 12, 16, 0.3), 8);
        let tight = pattern_failure_rate(&inst, 1, 4, 60, 9);
        let loose = pattern_failure_rate(&inst, 8, 8, 60, 9);
        assert!(tight >= loose, "tight {tight} < loose {loose}");
    }

    #[test]
    fn targets_are_consistent() {
        let inst = small_instance(10);
        let (c, d, triv, target) = targets(&inst);
        assert_eq!(d, 8);
        assert_eq!(triv, c + 8);
        assert!(target >= triv);
    }
}
