//! Property-based tests of the graph substrate.

use das_graph::{generators, traversal, tree::RootedTree, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generators that promise connectivity deliver it; all adjacency is
    /// mirrored; endpoints are ordered.
    #[test]
    fn generator_invariants(n in 4usize..60, p in 0.02f64..0.3, seed in 0u64..1000) {
        let g = generators::gnp_connected(n, p, seed);
        prop_assert!(traversal::is_connected(&g));
        for v in g.nodes() {
            for &(u, e) in g.neighbors(v) {
                prop_assert!(g.neighbors(u).iter().any(|&(w, e2)| w == v && e2 == e));
                prop_assert_eq!(g.other_endpoint(e, v), u);
            }
        }
        for e in g.edges() {
            let (a, b) = g.endpoints(e);
            prop_assert!(a < b);
            prop_assert_eq!(g.find_edge(a, b), Some(e));
            prop_assert_eq!(g.find_edge(b, a), Some(e));
        }
    }

    /// BFS distances satisfy the edge-wise Lipschitz property and match
    /// shortest-path lengths.
    #[test]
    fn bfs_distances_are_metric(n in 4usize..50, seed in 0u64..1000) {
        let g = generators::gnp_connected(n, 3.0 / n as f64, seed);
        let src = NodeId(0);
        let dist = traversal::bfs_distances(&g, src);
        for e in g.edges() {
            let (a, b) = g.endpoints(e);
            let (da, db) = (dist[a.index()].unwrap() as i64, dist[b.index()].unwrap() as i64);
            prop_assert!((da - db).abs() <= 1, "edge {a}-{b}: {da} vs {db}");
        }
        for v in g.nodes() {
            let path = traversal::shortest_path(&g, src, v).unwrap();
            prop_assert_eq!(path.len() as u32 - 1, dist[v.index()].unwrap());
        }
    }

    /// Balls grow monotonically and reach the whole graph at the
    /// eccentricity.
    #[test]
    fn balls_are_monotone(n in 4usize..40, seed in 0u64..1000, v in 0u32..4) {
        let g = generators::gnp_connected(n, 3.0 / n as f64, seed);
        let v = NodeId(v % n as u32);
        let ecc = traversal::eccentricity(&g, v).unwrap();
        let mut prev = 0;
        for h in 0..=ecc {
            let b = traversal::ball(&g, v, h).len();
            prop_assert!(b >= prev);
            prev = b;
        }
        prop_assert_eq!(prev, n);
    }

    /// BFS trees are spanning, acyclic (n-1 parent edges), and depth
    /// equals BFS distance.
    #[test]
    fn bfs_tree_invariants(n in 2usize..40, seed in 0u64..1000) {
        // 3.0 / n exceeds 1.0 for n < 3, and gnp_connected rejects p > 1
        let g = generators::gnp_connected(n, (3.0 / n as f64).min(1.0), seed);
        let t = RootedTree::bfs(&g, NodeId(0));
        let dist = traversal::bfs_distances(&g, NodeId(0));
        let mut parent_edges = 0;
        for v in g.nodes() {
            prop_assert_eq!(t.depth(v), dist[v.index()].unwrap());
            if v != t.root() {
                parent_edges += 1;
                prop_assert!(t.parent(v).is_some());
            }
        }
        prop_assert_eq!(parent_edges, n - 1);
        let sizes = t.subtree_sizes();
        prop_assert_eq!(sizes[0] as usize, n);
    }

    /// Diameter estimates bracket the exact diameter.
    #[test]
    fn diameter_estimate_brackets(n in 3usize..35, seed in 0u64..500) {
        let g = generators::gnp_connected(n, 3.0 / n as f64, seed);
        let exact = traversal::diameter(&g).unwrap();
        let (lb, ub) = traversal::diameter_estimate(&g, NodeId(0)).unwrap();
        prop_assert!(lb <= exact && exact <= ub, "{lb} <= {exact} <= {ub}");
    }
}
