//! GraphViz DOT export, used to render figure artifacts.

use crate::graph::{Graph, NodeId};
use std::fmt::Write;

/// Renders the graph in GraphViz DOT format.
///
/// `label` is called once per node; return `None` to use the default
/// `v<id>` label.
///
/// ```
/// use das_graph::{generators, dot};
/// let g = generators::path(3);
/// let s = dot::to_dot(&g, |_| None);
/// assert!(s.contains("v0 -- v1"));
/// ```
pub fn to_dot<F>(g: &Graph, label: F) -> String
where
    F: Fn(NodeId) -> Option<String>,
{
    let mut out = String::new();
    out.push_str("graph G {\n");
    for v in g.nodes() {
        match label(v) {
            Some(l) => {
                let _ = writeln!(out, "  v{} [label=\"{}\"];", v.0, l.replace('"', "'"));
            }
            None => {
                let _ = writeln!(out, "  v{};", v.0);
            }
        }
    }
    for e in g.edges() {
        let (a, b) = g.endpoints(e);
        let _ = writeln!(out, "  v{} -- v{};", a.0, b.0);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_contains_all_edges() {
        let g = generators::cycle(4);
        let s = to_dot(&g, |_| None);
        assert_eq!(s.matches(" -- ").count(), 4);
        assert!(s.starts_with("graph G {"));
        assert!(s.trim_end().ends_with('}'));
    }

    #[test]
    fn custom_labels() {
        let g = generators::path(2);
        let s = to_dot(&g, |v| Some(format!("node {}", v.0)));
        assert!(s.contains("label=\"node 0\""));
    }
}
