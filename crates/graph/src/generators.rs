//! Deterministic topology generators.
//!
//! Random topologies take an explicit `u64` seed so every experiment is
//! reproducible from its configuration.

use crate::builder::GraphBuilder;
use crate::graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A path `v0 - v1 - … - v{n-1}`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "path needs at least one node");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge((i - 1) as u32, i as u32);
    }
    b.build()
}

/// A cycle on `n >= 3` nodes.
///
/// # Panics
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least three nodes");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        b.add_edge(i as u32, ((i + 1) % n) as u32);
    }
    b.build()
}

/// A star: node 0 is the hub connected to nodes `1..n`.
///
/// # Panics
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n > 0, "star needs at least one node");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(0, i as u32);
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as u32, v as u32);
        }
    }
    b.build()
}

/// A `rows x cols` grid; node `(r, c)` has id `r * cols + c`.
///
/// # Panics
/// Panics if either side is zero.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid sides must be positive");
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// A `rows x cols` torus (grid with wrap-around); needs both sides >= 3 to
/// stay simple.
///
/// # Panics
/// Panics if either side is `< 3`.
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus sides must be >= 3");
    let mut b = GraphBuilder::new(rows * cols);
    let id = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(id(r, c), id(r, (c + 1) % cols));
            b.add_edge(id(r, c), id((r + 1) % rows, c));
        }
    }
    b.build()
}

/// A complete `arity`-ary tree with `n` nodes; node 0 is the root and node
/// `i > 0` has parent `(i - 1) / arity`.
///
/// # Panics
/// Panics if `n == 0` or `arity == 0`.
pub fn balanced_tree(n: usize, arity: usize) -> Graph {
    assert!(n > 0 && arity > 0, "tree needs nodes and positive arity");
    let mut b = GraphBuilder::new(n);
    for i in 1..n {
        b.add_edge(((i - 1) / arity) as u32, i as u32);
    }
    b.build()
}

/// The `d`-dimensional hypercube on `2^d` nodes.
///
/// # Panics
/// Panics if `d > 20` (guard against absurd sizes).
pub fn hypercube(d: usize) -> Graph {
    assert!(d <= 20, "hypercube dimension too large");
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(v as u32, u as u32);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` conditioned on connectivity: edges are sampled
/// independently with probability `p`, then a random spanning-path over a
/// random permutation is added so the result is always connected.
///
/// # Panics
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn gnp_connected(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n > 0, "graph needs at least one node");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(u as u32, v as u32);
            }
        }
    }
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(&mut rng);
    for w in perm.windows(2) {
        b.add_edge(w[0], w[1]);
    }
    b.build()
}

/// A random `d`-regular-ish graph built from `d/2` superimposed random
/// Hamiltonian cycles (a standard expander construction); `d` must be even
/// and `n >= 3`. Duplicate edges are dropped, so degrees can be slightly
/// below `d`.
///
/// # Panics
/// Panics if `d` is odd or zero, or `n < 3`.
pub fn random_regular_expander(n: usize, d: usize, seed: u64) -> Graph {
    assert!(
        d > 0 && d.is_multiple_of(2),
        "degree must be positive and even"
    );
    assert!(n >= 3, "need at least three nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for _ in 0..d / 2 {
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut rng);
        for i in 0..n {
            b.add_edge(perm[i], perm[(i + 1) % n]);
        }
    }
    b.build()
}

/// A barbell: two cliques of size `k` joined by a path of `bridge` extra
/// nodes. Good for stressing low-conductance cuts.
///
/// # Panics
/// Panics if `k < 2`.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    assert!(k >= 2, "cliques need at least two nodes");
    let n = 2 * k + bridge;
    let mut b = GraphBuilder::new(n);
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge(u as u32, v as u32);
        }
    }
    let off = k + bridge;
    for u in 0..k {
        for v in (u + 1)..k {
            b.add_edge((off + u) as u32, (off + v) as u32);
        }
    }
    // path from node 0 of clique A through the bridge to node 0 of clique B
    let mut prev = 0u32;
    for i in 0..bridge {
        let w = (k + i) as u32;
        b.add_edge(prev, w);
        prev = w;
    }
    b.add_edge(prev, off as u32);
    b.build()
}

/// A caterpillar: a spine path of `spine` nodes, each with `legs` leaf
/// nodes attached. Spine node `i` has id `i`; its `j`-th leg has id
/// `spine + i * legs + j`.
///
/// # Panics
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine > 0, "need at least one spine node");
    let mut b = GraphBuilder::new(spine + spine * legs);
    for i in 1..spine {
        b.add_edge((i - 1) as u32, i as u32);
    }
    for i in 0..spine {
        for j in 0..legs {
            b.add_edge(i as u32, (spine + i * legs + j) as u32);
        }
    }
    b.build()
}

/// The layered network of the paper's Section 3 lower bound (Figure 2):
/// spine nodes `v_0 … v_L` and `L` groups `U_1 … U_L` of `eta` nodes each,
/// where every `u ∈ U_i` is connected to `v_{i-1}` and `v_i`.
///
/// Node ids: spine node `v_i` has id `i` (`0..=L`), and the `j`-th node of
/// `U_i` has id `(L + 1) + (i - 1) * eta + j`.
///
/// # Panics
/// Panics if `layers == 0` or `eta == 0`.
pub fn layered(layers: usize, eta: usize) -> Graph {
    assert!(layers > 0 && eta > 0, "need at least one layer and node");
    let n = (layers + 1) + layers * eta;
    let mut b = GraphBuilder::new(n);
    for i in 1..=layers {
        for j in 0..eta {
            let u = ((layers + 1) + (i - 1) * eta + j) as u32;
            b.add_edge((i - 1) as u32, u);
            b.add_edge(i as u32, u);
        }
    }
    b.build()
}

/// Id of spine node `v_i` in a [`layered`] graph.
pub fn layered_spine(i: usize) -> NodeId {
    NodeId(i as u32)
}

/// Id of the `j`-th node of group `U_i` (`i >= 1`) in a [`layered`] graph
/// with the given number of layers and group size.
pub fn layered_group(layers: usize, eta: usize, i: usize, j: usize) -> NodeId {
    assert!(i >= 1 && i <= layers && j < eta, "group index out of range");
    NodeId(((layers + 1) + (i - 1) * eta + j) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(2)), 2);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.edge_count(), 6);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn star_shape() {
        let g = star(7);
        assert_eq!(g.degree(NodeId(0)), 6);
        assert_eq!(g.edge_count(), 6);
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 3 * 3 + 2 * 4);
        // corner degree 2, inner degree 4
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.degree(NodeId(5)), 4);
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(3, 5);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert_eq!(g.edge_count(), 2 * 15);
    }

    #[test]
    fn tree_shape() {
        let g = balanced_tree(7, 2);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert!(traversal::is_connected(&g));
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn gnp_is_connected_and_deterministic() {
        let g1 = gnp_connected(40, 0.05, 7);
        let g2 = gnp_connected(40, 0.05, 7);
        assert!(traversal::is_connected(&g1));
        assert_eq!(g1.edge_count(), g2.edge_count());
        let g3 = gnp_connected(40, 0.05, 8);
        // different seeds should (overwhelmingly) differ
        assert!(
            g1.edge_count() != g3.edge_count() || {
                g1.edges().any(|e| g1.endpoints(e) != g3.endpoints(e))
            }
        );
    }

    #[test]
    fn expander_is_connected_with_small_diameter() {
        let g = random_regular_expander(100, 6, 3);
        assert!(traversal::is_connected(&g));
        let d = traversal::diameter(&g).unwrap();
        assert!(d <= 10, "expander diameter should be small, got {d}");
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 2);
        assert_eq!(g.node_count(), 10);
        assert!(traversal::is_connected(&g));
        // two K4s (6 edges each) + 3 bridge edges
        assert_eq!(g.edge_count(), 15);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 3);
        assert_eq!(g.node_count(), 16);
        assert_eq!(g.edge_count(), 3 + 12);
        assert!(traversal::is_connected(&g));
        assert_eq!(g.degree(NodeId(0)), 4); // 1 spine + 3 legs
        assert_eq!(g.degree(NodeId(1)), 5); // 2 spine + 3 legs
        assert_eq!(g.degree(NodeId(7)), 1); // a leg
    }

    #[test]
    fn layered_shape() {
        let layers = 3;
        let eta = 4;
        let g = layered(layers, eta);
        assert_eq!(g.node_count(), 4 + 12);
        assert_eq!(g.edge_count(), layers * eta * 2);
        assert!(traversal::is_connected(&g));
        // every group node has degree exactly 2
        for i in 1..=layers {
            for j in 0..eta {
                let u = layered_group(layers, eta, i, j);
                assert_eq!(g.degree(u), 2);
                let nbrs: Vec<NodeId> = g.neighbors(u).iter().map(|&(v, _)| v).collect();
                assert!(nbrs.contains(&layered_spine(i - 1)));
                assert!(nbrs.contains(&layered_spine(i)));
            }
        }
        // spine distance: v_0 to v_L is 2L hops
        let dist = traversal::bfs_distances(&g, layered_spine(0));
        assert_eq!(dist[layered_spine(layers).index()], Some(2 * layers as u32));
    }
}
