//! Rooted spanning trees and tree utilities.
//!
//! Several workloads (convergecast, MST upcast, Kutten–Peleg style
//! pipelines) operate on a rooted BFS tree of the network; this module
//! provides that structure plus the traversal orders the pipelines need.

use crate::graph::{EdgeId, Graph, NodeId};
use crate::traversal;

/// A rooted spanning tree of (a connected) [`Graph`].
#[derive(Clone, Debug)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    parent_edge: Vec<Option<EdgeId>>,
    depth: Vec<u32>,
    children: Vec<Vec<NodeId>>,
}

impl RootedTree {
    /// Builds a BFS spanning tree rooted at `root`.
    ///
    /// # Panics
    /// Panics if the graph is not connected or `root` is out of range.
    pub fn bfs(g: &Graph, root: NodeId) -> Self {
        assert!(root.index() < g.node_count(), "root out of range");
        let parent = traversal::bfs_parents(g, root);
        let dist = traversal::bfs_distances(g, root);
        let n = g.node_count();
        let mut parent_edge = vec![None; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut depth = vec![0u32; n];
        for v in 0..n {
            match dist[v] {
                Some(d) => depth[v] = d,
                None => panic!("graph is not connected; node v{v} unreachable"),
            }
            if let Some(p) = parent[v] {
                let e = g
                    .find_edge(p, NodeId(v as u32))
                    .expect("BFS parent must be adjacent");
                parent_edge[v] = Some(e);
                children[p.index()].push(NodeId(v as u32));
            }
        }
        RootedTree {
            root,
            parent,
            parent_edge,
            depth,
            children,
        }
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Parent of `v` (`None` for the root).
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.index()]
    }

    /// The edge to the parent of `v` (`None` for the root).
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.parent_edge[v.index()]
    }

    /// Depth of `v` (root has depth 0).
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.index()]
    }

    /// Height of the tree: maximum depth.
    pub fn height(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Children of `v`, in increasing id order of discovery.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v.index()]
    }

    /// Whether `v` is a leaf (no children; the root of a 1-node tree is a
    /// leaf too).
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children[v.index()].is_empty()
    }

    /// Nodes in an order where every parent precedes its children.
    pub fn top_down_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.node_count());
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            order.push(v);
            stack.extend(self.children(v).iter().copied());
        }
        order
    }

    /// Nodes in an order where every child precedes its parent.
    pub fn bottom_up_order(&self) -> Vec<NodeId> {
        let mut order = self.top_down_order();
        order.reverse();
        order
    }

    /// Subtree sizes (number of nodes in the subtree rooted at each node).
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let mut size = vec![1u32; self.node_count()];
        for v in self.bottom_up_order() {
            if let Some(p) = self.parent(v) {
                size[p.index()] += size[v.index()];
            }
        }
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_tree_on_grid() {
        let g = generators::grid(3, 3);
        let t = RootedTree::bfs(&g, NodeId(0));
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.parent(NodeId(0)), None);
        assert_eq!(t.height(), 4);
        assert_eq!(t.depth(NodeId(8)), 4);
        // every non-root has a parent at depth - 1 connected by a real edge
        for v in g.nodes() {
            if v == t.root() {
                continue;
            }
            let p = t.parent(v).unwrap();
            assert_eq!(t.depth(p) + 1, t.depth(v));
            assert!(g.has_edge(p, v));
            assert_eq!(t.parent_edge(v), g.find_edge(p, v));
            assert!(t.children(p).contains(&v));
        }
    }

    #[test]
    fn orders_respect_parenthood() {
        let g = generators::balanced_tree(15, 2);
        let t = RootedTree::bfs(&g, NodeId(0));
        let order = t.top_down_order();
        assert_eq!(order.len(), 15);
        let pos: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for v in g.nodes() {
            if let Some(p) = t.parent(v) {
                assert!(pos[&p] < pos[&v]);
            }
        }
        let up = t.bottom_up_order();
        let upos: std::collections::HashMap<NodeId, usize> =
            up.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        for v in g.nodes() {
            if let Some(p) = t.parent(v) {
                assert!(upos[&v] < upos[&p]);
            }
        }
    }

    #[test]
    fn subtree_sizes_sum() {
        let g = generators::balanced_tree(7, 2);
        let t = RootedTree::bfs(&g, NodeId(0));
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[0], 7);
        assert_eq!(sizes[1], 3);
        assert_eq!(sizes[6], 1);
        assert!(t.is_leaf(NodeId(6)));
        assert!(!t.is_leaf(NodeId(0)));
    }

    #[test]
    #[should_panic]
    fn disconnected_graph_panics() {
        let mut b = crate::GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g = b.build();
        let _ = RootedTree::bfs(&g, NodeId(0));
    }
}
