//! The immutable undirected [`Graph`] type and its identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node in a [`Graph`].
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of an undirected edge in a [`Graph`].
///
/// Edge ids are dense: a graph with `m` edges uses ids `0..m`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Returns the id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for EdgeId {
    fn from(v: u32) -> Self {
        EdgeId(v)
    }
}

/// One of the two directions of an undirected edge.
///
/// The CONGEST model allows one message per edge *per direction* per round,
/// so directions are first-class: `Forward` is the direction from the
/// smaller-id endpoint to the larger-id endpoint.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Direction {
    /// From the smaller-id endpoint towards the larger-id endpoint.
    Forward,
    /// From the larger-id endpoint towards the smaller-id endpoint.
    Backward,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

/// A directed view of an undirected edge: an (edge, direction) pair.
///
/// There are exactly `2m` arcs in a graph with `m` edges, and
/// [`Arc::index`] maps them densely onto `0..2m`, which the simulator uses
/// for per-direction bandwidth accounting.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Arc {
    /// The underlying undirected edge.
    pub edge: EdgeId,
    /// The traversal direction.
    pub direction: Direction,
}

impl Arc {
    /// Creates an arc from an edge and a direction.
    #[inline]
    pub fn new(edge: EdgeId, direction: Direction) -> Self {
        Arc { edge, direction }
    }

    /// Dense index of the arc in `0..2m`.
    #[inline]
    pub fn index(self) -> usize {
        self.edge.index() * 2
            + match self.direction {
                Direction::Forward => 0,
                Direction::Backward => 1,
            }
    }

    /// Inverse of [`Arc::index`].
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Arc {
            edge: EdgeId((i / 2) as u32),
            direction: if i.is_multiple_of(2) {
                Direction::Forward
            } else {
                Direction::Backward
            },
        }
    }

    /// The same edge traversed the other way.
    #[inline]
    pub fn reverse(self) -> Arc {
        Arc::new(self.edge, self.direction.reverse())
    }
}

/// An immutable, connected-or-not, simple undirected graph in CSR layout.
///
/// Construct one with [`crate::GraphBuilder`] or the topology functions in
/// [`crate::generators`].
///
/// ```
/// use das_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.degree(das_graph::NodeId(1)), 2);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Graph {
    /// CSR offsets: neighbors of node `v` live at `adj[adj_off[v]..adj_off[v+1]]`.
    adj_off: Vec<u32>,
    /// Flat neighbor array: (neighbor node, incident edge id).
    adj: Vec<(NodeId, EdgeId)>,
    /// Endpoints of each edge, stored with `endpoints[e].0 < endpoints[e].1`.
    endpoints: Vec<(NodeId, NodeId)>,
}

impl Graph {
    pub(crate) fn from_parts(
        adj_off: Vec<u32>,
        adj: Vec<(NodeId, EdgeId)>,
        endpoints: Vec<(NodeId, NodeId)>,
    ) -> Self {
        Graph {
            adj_off,
            adj,
            endpoints,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj_off.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Number of directed arcs (`2 * edge_count`).
    #[inline]
    pub fn arc_count(&self) -> usize {
        2 * self.endpoints.len()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterator over all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edge_count() as u32).map(EdgeId)
    }

    /// Degree of `v`.
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.adj_off[v.index() + 1] - self.adj_off[v.index()]) as usize
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Neighbors of `v` together with the connecting edge ids, sorted by
    /// neighbor id (so callers may binary search).
    ///
    /// # Panics
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        let lo = self.adj_off[v.index()] as usize;
        let hi = self.adj_off[v.index() + 1] as usize;
        &self.adj[lo..hi]
    }

    /// The two endpoints of edge `e`, smaller id first.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.endpoints[e.index()]
    }

    /// The endpoint of `e` other than `v`.
    ///
    /// # Panics
    /// Panics if `v` is not an endpoint of `e`.
    #[inline]
    pub fn other_endpoint(&self, e: EdgeId, v: NodeId) -> NodeId {
        let (a, b) = self.endpoints(e);
        if v == a {
            b
        } else if v == b {
            a
        } else {
            panic!("{v} is not an endpoint of {e}");
        }
    }

    /// Looks up the edge between `u` and `v`, if any.
    ///
    /// Binary search over the smaller endpoint's sorted adjacency:
    /// `O(log min(deg u, deg v))`.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        let (scan, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let nbrs = self.neighbors(scan);
        nbrs.binary_search_by_key(&target, |&(w, _)| w)
            .ok()
            .map(|i| nbrs[i].1)
    }

    /// Whether `u` and `v` are adjacent.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.find_edge(u, v).is_some()
    }

    /// The arc describing a traversal of edge `e` starting at node `from`.
    ///
    /// # Panics
    /// Panics if `from` is not an endpoint of `e`.
    #[inline]
    pub fn arc_from(&self, e: EdgeId, from: NodeId) -> Arc {
        let (a, b) = self.endpoints(e);
        if from == a {
            Arc::new(e, Direction::Forward)
        } else if from == b {
            Arc::new(e, Direction::Backward)
        } else {
            panic!("{from} is not an endpoint of {e}");
        }
    }

    /// The (source, destination) node pair of an arc.
    #[inline]
    pub fn arc_endpoints(&self, arc: Arc) -> (NodeId, NodeId) {
        let (a, b) = self.endpoints(arc.edge);
        match arc.direction {
            Direction::Forward => (a, b),
            Direction::Backward => (b, a),
        }
    }

    /// Total number of (node, incident edge) pairs, i.e. `2m`.
    pub fn total_degree(&self) -> usize {
        self.adj.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.build()
    }

    #[test]
    fn counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.arc_count(), 6);
        assert_eq!(g.total_degree(), 6);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle();
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        let nbrs: Vec<NodeId> = g.neighbors(NodeId(0)).iter().map(|&(n, _)| n).collect();
        assert!(nbrs.contains(&NodeId(1)));
        assert!(nbrs.contains(&NodeId(2)));
    }

    #[test]
    fn endpoints_sorted() {
        let g = triangle();
        for e in g.edges() {
            let (a, b) = g.endpoints(e);
            assert!(a < b);
        }
    }

    #[test]
    fn find_edge_both_orders() {
        let g = triangle();
        let e = g.find_edge(NodeId(2), NodeId(0)).unwrap();
        assert_eq!(g.endpoints(e), (NodeId(0), NodeId(2)));
        assert_eq!(g.find_edge(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn other_endpoint() {
        let g = triangle();
        let e = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(g.other_endpoint(e, NodeId(0)), NodeId(1));
        assert_eq!(g.other_endpoint(e, NodeId(1)), NodeId(0));
    }

    #[test]
    #[should_panic]
    fn other_endpoint_panics_for_non_endpoint() {
        let g = triangle();
        let e = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let _ = g.other_endpoint(e, NodeId(2));
    }

    #[test]
    fn arc_index_roundtrip() {
        for i in 0..10 {
            let a = Arc::from_index(i);
            assert_eq!(a.index(), i);
            assert_eq!(a.reverse().reverse(), a);
            assert_ne!(a.reverse().index(), a.index());
        }
    }

    #[test]
    fn arc_endpoints_match_direction() {
        let g = triangle();
        let e = g.find_edge(NodeId(1), NodeId(2)).unwrap();
        let fwd = g.arc_from(e, NodeId(1));
        assert_eq!(g.arc_endpoints(fwd), (NodeId(1), NodeId(2)));
        assert_eq!(g.arc_endpoints(fwd.reverse()), (NodeId(2), NodeId(1)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", NodeId(7)), "v7");
        assert_eq!(format!("{}", EdgeId(3)), "e3");
        assert_eq!(format!("{:?}", NodeId(7)), "v7");
    }
}
