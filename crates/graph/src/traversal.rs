//! Breadth-first traversal and distance computations.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Hop distances from `source` to every node (`None` for unreachable nodes).
///
/// Runs in `O(n + m)`.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<Option<u32>> {
    multi_source_bfs(g, std::slice::from_ref(&source))
}

/// Hop distances from the nearest of `sources` to every node.
///
/// # Panics
/// Panics if `sources` is empty or contains an out-of-range node.
pub fn multi_source_bfs(g: &Graph, sources: &[NodeId]) -> Vec<Option<u32>> {
    assert!(!sources.is_empty(), "need at least one source");
    let mut dist = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    for &s in sources {
        assert!(s.index() < g.node_count(), "source {s} out of range");
        if dist[s.index()].is_none() {
            dist[s.index()] = Some(0);
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()].unwrap();
        for &(u, _) in g.neighbors(v) {
            if dist[u.index()].is_none() {
                dist[u.index()] = Some(d + 1);
                queue.push_back(u);
            }
        }
    }
    dist
}

/// BFS parents from `source`: `parent[v]` is the predecessor of `v` on a
/// shortest path from `source` (`None` for the source itself and for
/// unreachable nodes).
pub fn bfs_parents(g: &Graph, source: NodeId) -> Vec<Option<NodeId>> {
    let mut parent = vec![None; g.node_count()];
    let mut seen = vec![false; g.node_count()];
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for &(u, _) in g.neighbors(v) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                parent[u.index()] = Some(v);
                queue.push_back(u);
            }
        }
    }
    parent
}

/// A shortest path from `from` to `to` as a node sequence (inclusive), or
/// `None` if `to` is unreachable.
pub fn shortest_path(g: &Graph, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    if from == to {
        return Some(vec![from]);
    }
    let parent = bfs_parents(g, from);
    parent[to.index()]?;
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        cur = parent[cur.index()].expect("parent chain reaches the source");
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Connected-component labels in `0..component_count`, assigned in order of
/// smallest contained node id.
pub fn components(g: &Graph) -> (usize, Vec<u32>) {
    let n = g.node_count();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if label[s] != u32::MAX {
            continue;
        }
        label[s] = count;
        queue.push_back(NodeId(s as u32));
        while let Some(v) = queue.pop_front() {
            for &(u, _) in g.neighbors(v) {
                if label[u.index()] == u32::MAX {
                    label[u.index()] = count;
                    queue.push_back(u);
                }
            }
        }
        count += 1;
    }
    (count as usize, label)
}

/// Whether the graph is connected. The empty graph counts as connected.
pub fn is_connected(g: &Graph) -> bool {
    g.node_count() == 0 || components(g).0 == 1
}

/// Eccentricity of `v`: the maximum distance from `v` to any reachable node,
/// or `None` if some node is unreachable.
pub fn eccentricity(g: &Graph, v: NodeId) -> Option<u32> {
    let dist = bfs_distances(g, v);
    let mut ecc = 0;
    for d in dist {
        ecc = ecc.max(d?);
    }
    Some(ecc)
}

/// Exact diameter by all-pairs BFS (`O(n·m)`), or `None` if disconnected.
pub fn diameter(g: &Graph) -> Option<u32> {
    if g.node_count() == 0 {
        return Some(0);
    }
    let mut best = 0;
    for v in g.nodes() {
        best = best.max(eccentricity(g, v)?);
    }
    Some(best)
}

/// Lower/upper diameter estimate by double-sweep BFS: returns
/// `(lower_bound, upper_bound = 2 * lower_bound)`; `None` if disconnected.
/// Much cheaper than [`diameter`] for large graphs.
pub fn diameter_estimate(g: &Graph, seed_node: NodeId) -> Option<(u32, u32)> {
    let d1 = bfs_distances(g, seed_node);
    let mut far = seed_node;
    let mut far_d = 0;
    for (i, d) in d1.iter().enumerate() {
        let d = (*d)?;
        if d > far_d {
            far_d = d;
            far = NodeId(i as u32);
        }
    }
    let lb = eccentricity(g, far)?;
    Some((lb, 2 * lb))
}

/// All nodes within `h` hops of `v` (including `v` itself), in BFS order.
pub fn ball(g: &Graph, v: NodeId, h: u32) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut dist = vec![u32::MAX; g.node_count()];
    let mut queue = VecDeque::new();
    dist[v.index()] = 0;
    queue.push_back(v);
    while let Some(w) = queue.pop_front() {
        out.push(w);
        if dist[w.index()] == h {
            continue;
        }
        for &(u, _) in g.neighbors(w) {
            if dist[u.index()] == u32::MAX {
                dist[u.index()] = dist[w.index()] + 1;
                queue.push_back(u);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::GraphBuilder;

    #[test]
    fn distances_on_path() {
        let g = generators::path(6);
        let d = bfs_distances(&g, NodeId(0));
        for (i, d) in d.iter().enumerate() {
            assert_eq!(*d, Some(i as u32));
        }
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = generators::path(7);
        let d = multi_source_bfs(&g, &[NodeId(0), NodeId(6)]);
        assert_eq!(d[3], Some(3));
        assert_eq!(d[5], Some(1));
    }

    #[test]
    fn unreachable_is_none() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        let g = b.build();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], None);
        assert!(!is_connected(&g));
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let g = generators::grid(4, 4);
        let p = shortest_path(&g, NodeId(0), NodeId(15)).unwrap();
        assert_eq!(p.first(), Some(&NodeId(0)));
        assert_eq!(p.last(), Some(&NodeId(15)));
        assert_eq!(p.len(), 7); // 6 hops
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn shortest_path_to_self() {
        let g = generators::path(3);
        assert_eq!(
            shortest_path(&g, NodeId(1), NodeId(1)),
            Some(vec![NodeId(1)])
        );
    }

    #[test]
    fn component_labels() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        b.add_edge(3, 4);
        let g = b.build();
        let (k, labels) = components(&g);
        assert_eq!(k, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(diameter(&generators::path(10)), Some(9));
        assert_eq!(diameter(&generators::cycle(10)), Some(5));
        assert_eq!(diameter(&generators::complete(10)), Some(1));
        assert_eq!(diameter(&generators::hypercube(5)), Some(5));
    }

    #[test]
    fn diameter_estimate_brackets_truth() {
        let g = generators::gnp_connected(60, 0.08, 11);
        let truth = diameter(&g).unwrap();
        let (lb, ub) = diameter_estimate(&g, NodeId(0)).unwrap();
        assert!(lb <= truth && truth <= ub, "{lb} <= {truth} <= {ub}");
    }

    #[test]
    fn ball_contents() {
        let g = generators::path(9);
        let b = ball(&g, NodeId(4), 2);
        let mut ids: Vec<u32> = b.iter().map(|v| v.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![2, 3, 4, 5, 6]);
        assert_eq!(ball(&g, NodeId(0), 0), vec![NodeId(0)]);
    }

    #[test]
    fn eccentricity_center_vs_leaf() {
        let g = generators::path(9);
        assert_eq!(eccentricity(&g, NodeId(4)), Some(4));
        assert_eq!(eccentricity(&g, NodeId(0)), Some(8));
    }
}
