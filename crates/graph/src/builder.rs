//! Incremental construction of [`Graph`] values.

use crate::graph::{EdgeId, Graph, NodeId};
use std::collections::BTreeSet;

/// Builder for [`Graph`].
///
/// Duplicate edges and self-loops are rejected, keeping every built graph
/// simple (the CONGEST model is defined on simple graphs).
///
/// ```
/// use das_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(2, 3);
/// let g = b.build();
/// assert_eq!(g.edge_count(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    seen: BTreeSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            seen: BTreeSet::new(),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}` and returns its id.
    ///
    /// Returns `None` (and adds nothing) if the edge is a self-loop or a
    /// duplicate of an existing edge.
    ///
    /// # Panics
    /// Panics if `u` or `v` is `>= n`.
    pub fn add_edge(&mut self, u: u32, v: u32) -> Option<EdgeId> {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for {} nodes",
            self.n
        );
        if u == v {
            return None;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let key = (NodeId(a), NodeId(b));
        if !self.seen.insert(key) {
            return None;
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(key);
        Some(id)
    }

    /// Whether the edge `{u, v}` has already been added.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.seen.contains(&(NodeId(a), NodeId(b)))
    }

    /// Finalizes the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.n;
        let mut deg = vec![0u32; n];
        for &(a, b) in &self.edges {
            deg[a.index()] += 1;
            deg[b.index()] += 1;
        }
        let mut adj_off = vec![0u32; n + 1];
        for v in 0..n {
            adj_off[v + 1] = adj_off[v] + deg[v];
        }
        let mut cursor: Vec<u32> = adj_off[..n].to_vec();
        let mut adj = vec![(NodeId(0), EdgeId(0)); self.edges.len() * 2];
        for (i, &(a, b)) in self.edges.iter().enumerate() {
            let e = EdgeId(i as u32);
            adj[cursor[a.index()] as usize] = (b, e);
            cursor[a.index()] += 1;
            adj[cursor[b.index()] as usize] = (a, e);
            cursor[b.index()] += 1;
        }
        // Sort each adjacency run by neighbor id so lookups can binary
        // search (the graph is simple, so neighbor ids are unique per run).
        for v in 0..n {
            let (lo, hi) = (adj_off[v] as usize, adj_off[v + 1] as usize);
            adj[lo..hi].sort_unstable();
        }
        Graph::from_parts(adj_off, adj, self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut b = GraphBuilder::new(3);
        assert!(b.add_edge(0, 1).is_some());
        assert!(b.add_edge(1, 0).is_none(), "reverse duplicate rejected");
        assert!(b.add_edge(2, 2).is_none(), "self loop rejected");
        assert_eq!(b.edge_count(), 1);
    }

    #[test]
    fn has_edge_is_order_insensitive() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 1);
        assert!(b.has_edge(1, 2));
        assert!(b.has_edge(2, 1));
        assert!(!b.has_edge(0, 1));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn isolated_nodes() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.degree(NodeId(4)), 0);
        assert_eq!(g.neighbors(NodeId(4)), &[]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }

    #[test]
    fn adjacency_is_sorted_by_neighbor() {
        // insertion order deliberately scrambled relative to id order
        let mut b = GraphBuilder::new(5);
        for &(u, v) in &[(2, 4), (0, 2), (2, 3), (1, 2), (4, 0)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        for v in g.nodes() {
            let ids: Vec<_> = g.neighbors(v).iter().map(|&(u, _)| u).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "neighbors of {v} unsorted");
            // edge ids still pair correctly after the sort
            for &(u, e) in g.neighbors(v) {
                assert_eq!(g.find_edge(v, u), Some(e));
            }
        }
    }

    #[test]
    fn csr_adjacency_consistent() {
        let mut b = GraphBuilder::new(6);
        let pairs = [(0, 1), (0, 2), (1, 3), (3, 4), (2, 4), (4, 5)];
        for &(u, v) in &pairs {
            b.add_edge(u, v);
        }
        let g = b.build();
        // every adjacency entry is mirrored
        for v in g.nodes() {
            for &(u, e) in g.neighbors(v) {
                assert!(g.neighbors(u).iter().any(|&(w, e2)| w == v && e2 == e));
                assert_eq!(g.other_endpoint(e, v), u);
            }
        }
        assert_eq!(g.total_degree(), 2 * pairs.len());
    }
}
