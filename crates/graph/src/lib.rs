//! # das-graph
//!
//! Graph substrate for the `dasched` project: compact undirected graphs,
//! deterministic topology generators, and the graph algorithms (BFS,
//! components, diameter, spanning trees) that the CONGEST simulator and the
//! schedulers are built on.
//!
//! The central type is [`Graph`], an immutable undirected multigraph-free
//! graph with `u32` node and edge identifiers. Graphs are constructed either
//! through [`GraphBuilder`] or through the ready-made topologies in
//! [`generators`].
//!
//! ```
//! use das_graph::{generators, traversal};
//!
//! let g = generators::grid(4, 5);
//! assert_eq!(g.node_count(), 20);
//! let dist = traversal::bfs_distances(&g, das_graph::NodeId(0));
//! assert_eq!(dist[19], Some(7)); // (3,4) is 3+4 hops from (0,0)
//! ```

#![warn(missing_docs)]

mod builder;
mod graph;

pub mod dot;
pub mod generators;
pub mod traversal;
pub mod tree;

pub use builder::GraphBuilder;
pub use graph::{Arc, Direction, EdgeId, Graph, NodeId};
