//! Communication patterns and the `congestion`/`dilation` parameters.

use das_congest::Recording;
use das_graph::{Arc, Graph, NodeId};
use serde::{Deserialize, Serialize};

/// One communication: a message traversing `arc` in round `round`.
///
/// Corresponds to the time-expanded edge `(v_round, u_{round+1})` where
/// `(v, u)` are the arc endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimedArc {
    /// The round in which the message departs.
    pub round: u32,
    /// The directed edge it traverses.
    pub arc: Arc,
}

/// The communication pattern of one algorithm: its footprint in `G × [T]`
/// (Section 2 of the paper). Content-free: only *which* edges carry
/// messages *when*.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommPattern {
    edge_count: usize,
    timed_arcs: Vec<TimedArc>,
}

impl CommPattern {
    /// Builds a pattern from an engine recording.
    pub fn from_recording(rec: &Recording) -> Self {
        let mut timed_arcs = Vec::with_capacity(rec.message_count() as usize);
        for (round, rr) in rec.round_records().iter().enumerate() {
            for &arc in &rr.arcs {
                timed_arcs.push(TimedArc {
                    round: round as u32,
                    arc,
                });
            }
        }
        CommPattern {
            edge_count: rec.edge_count(),
            timed_arcs,
        }
    }

    /// Builds a pattern directly from timed arcs (used by synthetic
    /// workloads and the lower-bound instance generator).
    pub fn from_timed_arcs(edge_count: usize, mut timed_arcs: Vec<TimedArc>) -> Self {
        timed_arcs.sort_unstable();
        timed_arcs.dedup();
        CommPattern {
            edge_count,
            timed_arcs,
        }
    }

    /// The timed arcs, sorted by (round, arc).
    pub fn timed_arcs(&self) -> &[TimedArc] {
        &self.timed_arcs
    }

    /// Number of messages in the pattern.
    pub fn message_count(&self) -> usize {
        self.timed_arcs.len()
    }

    /// Number of edges of the underlying graph.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The algorithm's running time: one past the last round that sends a
    /// message (0 for a silent algorithm).
    pub fn rounds(&self) -> u32 {
        self.timed_arcs.last().map_or(0, |ta| ta.round + 1)
    }

    /// `c_i(e)` for every edge `e`: the number of messages this algorithm
    /// sends over `e` (both directions).
    pub fn edge_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.edge_count];
        for ta in &self.timed_arcs {
            loads[ta.arc.edge.index()] += 1;
        }
        loads
    }

    /// Messages this pattern sends from node `v` in round `round`, as
    /// `(arc, destination)` pairs.
    pub fn sends_from(&self, g: &Graph, v: NodeId, round: u32) -> Vec<(Arc, NodeId)> {
        self.timed_arcs
            .iter()
            .filter(|ta| ta.round == round)
            .filter_map(|ta| {
                let (src, dst) = g.arc_endpoints(ta.arc);
                (src == v).then_some((ta.arc, dst))
            })
            .collect()
    }
}

/// The two quantities every bound in the paper is stated in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DasParameters {
    /// `congestion = max_e Σ_i c_i(e)`: the heaviest total per-edge load.
    pub congestion: u64,
    /// `dilation = max_i rounds(A_i)`: the longest single running time.
    pub dilation: u32,
}

impl DasParameters {
    /// The trivial lower bound `max(congestion, dilation)`; every schedule
    /// needs at least this many rounds.
    pub fn trivial_lower_bound(&self) -> u64 {
        self.congestion.max(self.dilation as u64)
    }

    /// `congestion + dilation`, the quantity LMR-style schedules are
    /// measured against.
    pub fn sum(&self) -> u64 {
        self.congestion + self.dilation as u64
    }
}

/// Computes the DAS parameters of a set of algorithms from their
/// communication patterns.
///
/// # Panics
/// Panics if the patterns disagree on the number of edges, or if `patterns`
/// is empty.
pub fn das_parameters(patterns: &[CommPattern]) -> DasParameters {
    assert!(!patterns.is_empty(), "need at least one pattern");
    let edge_count = patterns[0].edge_count();
    let mut total = vec![0u64; edge_count];
    let mut dilation = 0u32;
    for p in patterns {
        assert_eq!(p.edge_count(), edge_count, "patterns over different graphs");
        dilation = dilation.max(p.rounds());
        for (e, l) in p.edge_loads().into_iter().enumerate() {
            total[e] += l;
        }
    }
    DasParameters {
        congestion: total.into_iter().max().unwrap_or(0),
        dilation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_graph::{Direction, EdgeId};

    fn ta(round: u32, e: u32, fwd: bool) -> TimedArc {
        TimedArc {
            round,
            arc: Arc::new(
                EdgeId(e),
                if fwd {
                    Direction::Forward
                } else {
                    Direction::Backward
                },
            ),
        }
    }

    #[test]
    fn from_timed_arcs_sorts_and_dedups() {
        let p =
            CommPattern::from_timed_arcs(2, vec![ta(3, 1, true), ta(0, 0, true), ta(3, 1, true)]);
        assert_eq!(p.message_count(), 2);
        assert_eq!(p.timed_arcs()[0], ta(0, 0, true));
        assert_eq!(p.rounds(), 4);
    }

    #[test]
    fn edge_loads_count_both_directions() {
        let p =
            CommPattern::from_timed_arcs(2, vec![ta(0, 0, true), ta(1, 0, false), ta(0, 1, true)]);
        assert_eq!(p.edge_loads(), vec![2, 1]);
    }

    #[test]
    fn das_parameters_aggregate() {
        let p1 = CommPattern::from_timed_arcs(2, vec![ta(0, 0, true), ta(1, 0, true)]);
        let p2 = CommPattern::from_timed_arcs(2, vec![ta(0, 0, false), ta(5, 1, true)]);
        let params = das_parameters(&[p1, p2]);
        assert_eq!(params.congestion, 3); // edge 0 carries 2 + 1
        assert_eq!(params.dilation, 6); // p2 runs 6 rounds
        assert_eq!(params.trivial_lower_bound(), 6);
        assert_eq!(params.sum(), 9);
    }

    #[test]
    fn empty_pattern() {
        let p = CommPattern::from_timed_arcs(3, vec![]);
        assert_eq!(p.rounds(), 0);
        assert_eq!(p.message_count(), 0);
        assert_eq!(p.edge_loads(), vec![0, 0, 0]);
    }

    #[test]
    fn from_recording_matches_counts() {
        use das_congest::{Recording, RoundRecord};
        let rec = Recording::new(
            2,
            vec![
                RoundRecord {
                    arcs: vec![Arc::new(EdgeId(0), Direction::Forward)],
                },
                RoundRecord {
                    arcs: vec![Arc::new(EdgeId(1), Direction::Backward)],
                },
            ],
        );
        let p = CommPattern::from_recording(&rec);
        assert_eq!(p.message_count(), 2);
        assert_eq!(p.rounds(), 2);
        assert_eq!(p.edge_loads(), vec![1, 1]);
    }

    #[test]
    fn sends_from_filters_by_source_and_round() {
        let g = das_graph::generators::path(3);
        // edge 0 = {0,1}, edge 1 = {1,2}; Forward = small -> large
        let p = CommPattern::from_timed_arcs(
            g.edge_count(),
            vec![ta(0, 0, true), ta(0, 1, false), ta(1, 0, true)],
        );
        let s = p.sends_from(&g, NodeId(0), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].1, NodeId(1));
        // node 2 sends backward over edge 1 in round 0
        let s = p.sends_from(&g, NodeId(2), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].1, NodeId(1));
        assert!(p.sends_from(&g, NodeId(1), 0).is_empty());
    }
}
