//! The time-expanded graph `G × [T]` of Section 2.

use das_graph::{Graph, NodeId};
use std::fmt::Write as _;

/// The `T`-round time-expanded graph of a network `G = (V, E)`.
///
/// It has `T + 1` copies `V_0 … V_T` of the node set; copy `v_i ∈ V_i` is
/// connected by a directed edge to `u_{i+1} ∈ V_{i+1}` iff `{v, u} ∈ E`.
/// Communication patterns of `T`-round algorithms are subgraphs of this
/// graph.
#[derive(Clone, Debug)]
pub struct TimeExpandedGraph<'g> {
    graph: &'g Graph,
    horizon: usize,
}

impl<'g> TimeExpandedGraph<'g> {
    /// Creates `G × [T]` for the given horizon `T`.
    pub fn new(graph: &'g Graph, horizon: usize) -> Self {
        TimeExpandedGraph { graph, horizon }
    }

    /// The underlying network.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The horizon `T`.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Number of node copies, `(T + 1) · |V|`.
    pub fn copy_count(&self) -> usize {
        (self.horizon + 1) * self.graph.node_count()
    }

    /// Number of directed edges, `T · 2|E|` (each undirected network edge
    /// yields two directed time edges per step).
    pub fn edge_count(&self) -> usize {
        self.horizon * 2 * self.graph.edge_count()
    }

    /// Whether `(v_i, u_{i+1})` is an edge, i.e. whether `i < T` and
    /// `{v, u} ∈ E`.
    pub fn has_edge(&self, v: NodeId, i: usize, u: NodeId) -> bool {
        i < self.horizon && self.graph.has_edge(v, u)
    }

    /// Dense index of the node copy `v_i` in `0..copy_count()`.
    pub fn copy_index(&self, v: NodeId, i: usize) -> usize {
        assert!(i <= self.horizon, "time index out of range");
        i * self.graph.node_count() + v.index()
    }

    /// Renders an ASCII picture of the time-expanded graph with a
    /// communication pattern highlighted (the Figure 1 artifact). `used`
    /// is called with `(v, i, u)` and should return `true` iff the pattern
    /// sends a message from `v` to `u` in round `i`.
    pub fn render_ascii<F>(&self, used: F) -> String
    where
        F: Fn(NodeId, usize, NodeId) -> bool,
    {
        let n = self.graph.node_count();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "time-expanded graph G x [{}]  ({} nodes per column; * marks pattern edges)",
            self.horizon, n
        );
        let mut header = String::from("      ");
        for i in 0..=self.horizon {
            let _ = write!(header, "V_{i:<5}");
        }
        let _ = writeln!(out, "{header}");
        for v in self.graph.nodes() {
            let mut line = format!("v{:<4} ", v.0);
            for i in 0..=self.horizon {
                line.push('o');
                if i < self.horizon {
                    // mark whether v sends anywhere in round i
                    let sends = self.graph.neighbors(v).iter().any(|&(u, _)| used(v, i, u));
                    line.push_str(if sends { " *--> " } else { "      " });
                }
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_graph::generators;

    #[test]
    fn counts() {
        let g = generators::path(4); // 3 edges
        let te = TimeExpandedGraph::new(&g, 5);
        assert_eq!(te.copy_count(), 6 * 4);
        assert_eq!(te.edge_count(), 5 * 6);
        assert_eq!(te.horizon(), 5);
    }

    #[test]
    fn edges_follow_network_adjacency() {
        let g = generators::path(3);
        let te = TimeExpandedGraph::new(&g, 2);
        assert!(te.has_edge(NodeId(0), 0, NodeId(1)));
        assert!(te.has_edge(NodeId(1), 1, NodeId(0)));
        assert!(!te.has_edge(NodeId(0), 0, NodeId(2)), "not adjacent");
        assert!(!te.has_edge(NodeId(0), 2, NodeId(1)), "past horizon");
    }

    #[test]
    fn copy_index_is_dense_and_unique() {
        let g = generators::path(3);
        let te = TimeExpandedGraph::new(&g, 2);
        let mut seen = std::collections::HashSet::new();
        for i in 0..=2 {
            for v in g.nodes() {
                assert!(seen.insert(te.copy_index(v, i)));
            }
        }
        assert_eq!(seen.len(), te.copy_count());
        assert_eq!(seen.into_iter().max().unwrap(), te.copy_count() - 1);
    }

    #[test]
    fn ascii_render_marks_pattern() {
        let g = generators::path(2);
        let te = TimeExpandedGraph::new(&g, 2);
        let s = te.render_ascii(|v, i, _u| v == NodeId(0) && i == 0);
        assert!(s.contains("*-->"));
        assert!(s.contains("V_0"));
        assert!(s.contains("V_2"));
    }
}
