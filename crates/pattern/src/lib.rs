//! # das-pattern
//!
//! Communication patterns, time-expanded graphs, and causality — the formal
//! machinery of Section 2 of the paper.
//!
//! A `T`-round algorithm's communications form a subgraph of the
//! *time-expanded graph* `G × [T]` ([`TimeExpandedGraph`]): there is an edge
//! from copy `v_i` to copy `u_{i+1}` iff the algorithm sends a message from
//! `v` to `u` in round `i`. [`CommPattern`] captures that footprint (it is
//! produced directly from a [`das_congest::Recording`]), and
//! [`causality`] provides the causal-precedence relation and the checker for
//! valid *simulations* — mappings into a longer time span that preserve
//! causal precedence.
//!
//! The aggregate quantities the whole paper is parameterized by live here
//! too: [`das_parameters`] computes `congestion` and `dilation` of a set of
//! algorithms from their recordings.

#![warn(missing_docs)]

pub mod causality;
pub mod stats;

mod comm_pattern;
mod time_expanded;

pub use causality::{verify_simulation, SimulationError, SimulationMap};
pub use comm_pattern::{das_parameters, CommPattern, DasParameters, TimedArc};
pub use time_expanded::TimeExpandedGraph;
