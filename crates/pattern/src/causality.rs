//! Causal precedence and simulation verification (Section 2).
//!
//! In a pattern, communication `e1 = (v_i, u_{i+1})` *causally precedes*
//! `e2 = (x_j, y_{j+1})` if there is a chain of pattern communications
//! starting at `e1` and ending at `e2` where each link departs from the node
//! the previous link arrived at, no earlier than the arrival. A *simulation*
//! of an algorithm in a longer time span `T' ≥ T` re-times every
//! communication while preserving this relation; [`verify_simulation`]
//! checks that property for the schedules our schedulers emit.

use crate::comm_pattern::{CommPattern, TimedArc};
use das_graph::{Graph, NodeId};
use std::collections::{BTreeMap, HashMap};
use std::error::Error;
use std::fmt;

/// A mapping from original communications to their scheduled departure
/// rounds (over the same network edge, which is how all schedulers in this
/// project re-time messages).
///
/// An ordered map, so iteration (and `Debug` output) is deterministic —
/// important because these maps end up inside `ScheduleOutcome`, whose
/// byte-for-byte reproducibility across thread counts is a test invariant.
pub type SimulationMap = BTreeMap<TimedArc, u32>;

/// Why a candidate simulation map is invalid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimulationError {
    /// An original communication has no scheduled time.
    Unmapped {
        /// The communication that was never scheduled.
        arc: TimedArc,
    },
    /// A causal pair is scheduled out of order: the predecessor arrives
    /// after the successor departs.
    OrderViolation {
        /// The causally-earlier communication.
        earlier: TimedArc,
        /// The causally-later communication.
        later: TimedArc,
        /// Scheduled departure of `earlier`.
        earlier_sched: u32,
        /// Scheduled departure of `later`.
        later_sched: u32,
    },
}

impl fmt::Display for SimulationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulationError::Unmapped { arc } => {
                write!(f, "communication {arc:?} has no scheduled time")
            }
            SimulationError::OrderViolation {
                earlier,
                later,
                earlier_sched,
                later_sched,
            } => write!(
                f,
                "causal order violated: {earlier:?} scheduled at {earlier_sched} must arrive \
                 before {later:?} scheduled at {later_sched}"
            ),
        }
    }
}

impl Error for SimulationError {}

/// Whether `e1` causally precedes `e2` in `pattern` (reflexively false:
/// an edge does not precede itself unless through a real chain).
///
/// Runs a forward search over the pattern; intended for tests and small
/// instances — use [`verify_simulation`] to check whole schedules.
pub fn causally_precedes(g: &Graph, pattern: &CommPattern, e1: TimedArc, e2: TimedArc) -> bool {
    // Breadth-first over "reachable (node, earliest-departure-time) states".
    // State: we have arrived at node w at time t (may depart at rounds >= t).
    let (_, u1) = g.arc_endpoints(e1.arc);
    let start = (u1, e1.round + 1);
    let mut frontier = vec![start];
    let mut best: HashMap<NodeId, u32> = HashMap::new();
    best.insert(start.0, start.1);
    while let Some((w, t)) = frontier.pop() {
        for ta in pattern.timed_arcs() {
            let (src, dst) = g.arc_endpoints(ta.arc);
            if src != w || ta.round < t {
                continue;
            }
            if *ta == e2 {
                return true;
            }
            let arr = ta.round + 1;
            if best.get(&dst).is_none_or(|&b| arr < b) {
                best.insert(dst, arr);
                frontier.push((dst, arr));
            }
        }
    }
    false
}

/// Verifies that `map` is a valid simulation of `pattern`: every
/// communication is scheduled, and for every causal pair the predecessor's
/// scheduled arrival is no later than the successor's scheduled departure.
///
/// Only the *covering* pairs (`e1` arrives at the node `e2` departs from, no
/// later than `e2`'s departure) need checking — order on them implies order
/// on the full transitive closure, because schedules keep messages on their
/// original edges. Runs in `O(M log M)` for `M` messages.
///
/// # Errors
/// Returns the first violation found.
pub fn verify_simulation(
    g: &Graph,
    pattern: &CommPattern,
    map: &SimulationMap,
) -> Result<(), SimulationError> {
    // Check everything is mapped first.
    for ta in pattern.timed_arcs() {
        if !map.contains_key(ta) {
            return Err(SimulationError::Unmapped { arc: *ta });
        }
    }

    // Group communications by node: incoming (by arrival) and outgoing
    // (by departure).
    let n = g.node_count();
    let mut incoming: Vec<Vec<TimedArc>> = vec![Vec::new(); n];
    let mut outgoing: Vec<Vec<TimedArc>> = vec![Vec::new(); n];
    for ta in pattern.timed_arcs() {
        let (src, dst) = g.arc_endpoints(ta.arc);
        incoming[dst.index()].push(*ta);
        outgoing[src.index()].push(*ta);
    }

    for v in 0..n {
        // Sort incoming by original arrival time, outgoing by original
        // departure time.
        incoming[v].sort_unstable_by_key(|ta| ta.round);
        outgoing[v].sort_unstable_by_key(|ta| ta.round);
        // Sweep outgoing edges in original-departure order, keeping the
        // max scheduled arrival over all incoming with arrival <= departure,
        // together with a witness.
        let mut i = 0;
        let mut max_arr: Option<(u32, TimedArc)> = None;
        for &out in &outgoing[v] {
            while i < incoming[v].len() && incoming[v][i].round < out.round {
                let inc = incoming[v][i];
                let sched_arr = map[&inc] + 1;
                if max_arr.is_none_or(|(m, _)| sched_arr > m) {
                    max_arr = Some((sched_arr, inc));
                }
                i += 1;
            }
            if let Some((m, witness)) = max_arr {
                let out_sched = map[&out];
                if m > out_sched {
                    return Err(SimulationError::OrderViolation {
                        earlier: witness,
                        later: out,
                        earlier_sched: map[&witness],
                        later_sched: out_sched,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Builds the identity simulation (every communication keeps its round);
/// always valid.
pub fn identity_map(pattern: &CommPattern) -> SimulationMap {
    pattern
        .timed_arcs()
        .iter()
        .map(|&ta| (ta, ta.round))
        .collect()
}

/// Builds the simulation that delays every communication by `delay` rounds;
/// always valid (a rigid shift preserves all gaps).
pub fn shifted_map(pattern: &CommPattern, delay: u32) -> SimulationMap {
    pattern
        .timed_arcs()
        .iter()
        .map(|&ta| (ta, ta.round + delay))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_graph::generators;

    /// Pattern on a path 0-1-2: round 0 send 0->1, round 1 send 1->2.
    fn relay_pattern(g: &Graph) -> CommPattern {
        let e01 = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e12 = g.find_edge(NodeId(1), NodeId(2)).unwrap();
        CommPattern::from_timed_arcs(
            g.edge_count(),
            vec![
                TimedArc {
                    round: 0,
                    arc: g.arc_from(e01, NodeId(0)),
                },
                TimedArc {
                    round: 1,
                    arc: g.arc_from(e12, NodeId(1)),
                },
            ],
        )
    }

    #[test]
    fn relay_has_causal_chain() {
        let g = generators::path(3);
        let p = relay_pattern(&g);
        let tas = p.timed_arcs();
        assert!(causally_precedes(&g, &p, tas[0], tas[1]));
        assert!(!causally_precedes(&g, &p, tas[1], tas[0]));
    }

    #[test]
    fn identity_and_shift_are_valid() {
        let g = generators::path(3);
        let p = relay_pattern(&g);
        assert!(verify_simulation(&g, &p, &identity_map(&p)).is_ok());
        assert!(verify_simulation(&g, &p, &shifted_map(&p, 10)).is_ok());
    }

    #[test]
    fn reordering_is_rejected() {
        let g = generators::path(3);
        let p = relay_pattern(&g);
        let tas = p.timed_arcs().to_vec();
        let mut map = SimulationMap::new();
        map.insert(tas[0], 5); // arrives at 6 ...
        map.insert(tas[1], 3); // ... but successor departs at 3
        let err = verify_simulation(&g, &p, &map).unwrap_err();
        assert!(matches!(err, SimulationError::OrderViolation { .. }));
        assert!(err.to_string().contains("causal order violated"));
    }

    #[test]
    fn equal_time_arrival_departure_is_allowed() {
        // predecessor arrives exactly when successor departs: allowed
        // (k_l + 1 <= j with arrival = departure is the boundary case).
        let g = generators::path(3);
        let p = relay_pattern(&g);
        let tas = p.timed_arcs().to_vec();
        let mut map = SimulationMap::new();
        map.insert(tas[0], 4); // arrives at 5
        map.insert(tas[1], 5); // departs at 5: ok
        assert!(verify_simulation(&g, &p, &map).is_ok());
        map.insert(tas[1], 4); // departs at 4 < arrival 5: bad
        assert!(verify_simulation(&g, &p, &map).is_err());
    }

    #[test]
    fn unmapped_is_rejected() {
        let g = generators::path(3);
        let p = relay_pattern(&g);
        let mut map = identity_map(&p);
        let victim = p.timed_arcs()[1];
        map.remove(&victim);
        assert_eq!(
            verify_simulation(&g, &p, &map),
            Err(SimulationError::Unmapped { arc: victim })
        );
    }

    #[test]
    fn independent_messages_may_reorder() {
        // two messages from different nodes with no causal link can be
        // scheduled in any order.
        let g = generators::path(4);
        let e01 = g.find_edge(NodeId(0), NodeId(1)).unwrap();
        let e23 = g.find_edge(NodeId(2), NodeId(3)).unwrap();
        let p = CommPattern::from_timed_arcs(
            g.edge_count(),
            vec![
                TimedArc {
                    round: 0,
                    arc: g.arc_from(e01, NodeId(0)),
                },
                TimedArc {
                    round: 5,
                    arc: g.arc_from(e23, NodeId(2)),
                },
            ],
        );
        let tas = p.timed_arcs().to_vec();
        assert!(!causally_precedes(&g, &p, tas[0], tas[1]));
        let mut map = SimulationMap::new();
        map.insert(tas[0], 9);
        map.insert(tas[1], 0);
        assert!(verify_simulation(&g, &p, &map).is_ok());
    }

    #[test]
    fn causality_through_long_chain() {
        let g = generators::path(5);
        let mut tas = Vec::new();
        for i in 0..4 {
            let e = g.find_edge(NodeId(i), NodeId(i + 1)).unwrap();
            tas.push(TimedArc {
                round: i,
                arc: g.arc_from(e, NodeId(i)),
            });
        }
        let p = CommPattern::from_timed_arcs(g.edge_count(), tas.clone());
        assert!(causally_precedes(&g, &p, tas[0], tas[3]));
        // compressing the chain below its causal length must fail
        let mut map = SimulationMap::new();
        for (i, ta) in tas.iter().enumerate() {
            map.insert(*ta, (i / 2) as u32); // rounds 0,0,1,1 — too tight
        }
        assert!(verify_simulation(&g, &p, &map).is_err());
    }
}
