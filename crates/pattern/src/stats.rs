//! Load profiles of communication patterns — the quantities the
//! random-delay analyses reason about (per-round/per-phase edge loads).

use crate::comm_pattern::CommPattern;

/// Per-round and per-edge load statistics of one or more patterns.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadProfile {
    /// `load[r]` = messages sent in round `r` (across all patterns).
    pub per_round: Vec<u64>,
    /// Maximum messages any single edge carries in any single round.
    pub max_edge_round_load: u64,
    /// Maximum messages any single edge carries in any single *phase* of
    /// `phase_len` rounds (the Theorem 1.1 quantity).
    pub max_edge_phase_load: u64,
    /// The phase length used for the phase statistic.
    pub phase_len: u32,
}

/// Computes the joint load profile of `patterns` with the given phase
/// length.
///
/// # Panics
/// Panics if `patterns` is empty, `phase_len == 0`, or the patterns cover
/// different edge counts.
pub fn load_profile(patterns: &[CommPattern], phase_len: u32) -> LoadProfile {
    assert!(!patterns.is_empty(), "need at least one pattern");
    assert!(phase_len > 0, "phase length must be positive");
    let edge_count = patterns[0].edge_count();
    let rounds = patterns.iter().map(|p| p.rounds()).max().unwrap_or(0) as usize;
    let phases = rounds.div_ceil(phase_len as usize).max(1);

    let mut per_round = vec![0u64; rounds];
    let mut edge_round: std::collections::HashMap<(u32, u32), u64> =
        std::collections::HashMap::new();
    let mut edge_phase: std::collections::HashMap<(u32, u32), u64> =
        std::collections::HashMap::new();
    for p in patterns {
        assert_eq!(p.edge_count(), edge_count, "patterns over different graphs");
        for ta in p.timed_arcs() {
            per_round[ta.round as usize] += 1;
            *edge_round.entry((ta.arc.edge.0, ta.round)).or_default() += 1;
            *edge_phase
                .entry((ta.arc.edge.0, ta.round / phase_len))
                .or_default() += 1;
        }
    }
    let _ = phases;
    LoadProfile {
        per_round,
        max_edge_round_load: edge_round.values().copied().max().unwrap_or(0),
        max_edge_phase_load: edge_phase.values().copied().max().unwrap_or(0),
        phase_len,
    }
}

impl LoadProfile {
    /// Total messages.
    pub fn total_messages(&self) -> u64 {
        self.per_round.iter().sum()
    }

    /// The busiest round's message count.
    pub fn peak_round(&self) -> u64 {
        self.per_round.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm_pattern::TimedArc;
    use das_graph::{Arc, Direction, EdgeId};

    fn ta(round: u32, e: u32) -> TimedArc {
        TimedArc {
            round,
            arc: Arc::new(EdgeId(e), Direction::Forward),
        }
    }

    #[test]
    fn profile_counts() {
        let p1 = CommPattern::from_timed_arcs(3, vec![ta(0, 0), ta(1, 0), ta(1, 1)]);
        let p2 = CommPattern::from_timed_arcs(3, vec![ta(0, 0), ta(5, 2)]);
        let prof = load_profile(&[p1, p2], 2);
        assert_eq!(prof.total_messages(), 5);
        assert_eq!(prof.per_round[0], 2);
        assert_eq!(prof.per_round[1], 2);
        assert_eq!(prof.per_round[5], 1);
        assert_eq!(prof.peak_round(), 2);
        // edge 0 carries 2 messages in phase 0 (rounds 0-1)
        assert_eq!(prof.max_edge_phase_load, 3);
        assert_eq!(prof.max_edge_round_load, 2);
    }

    #[test]
    fn single_silent_pattern() {
        let p = CommPattern::from_timed_arcs(2, vec![]);
        let prof = load_profile(&[p], 4);
        assert_eq!(prof.total_messages(), 0);
        assert_eq!(prof.max_edge_phase_load, 0);
    }

    #[test]
    #[should_panic]
    fn zero_phase_panics() {
        let p = CommPattern::from_timed_arcs(1, vec![ta(0, 0)]);
        load_profile(&[p], 0);
    }
}
