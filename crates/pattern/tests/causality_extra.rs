//! Extra causality scenarios: branching, merging, and diamond-shaped
//! causal structures.

use das_graph::{generators, Graph, NodeId};
use das_pattern::causality::{identity_map, shifted_map, verify_simulation};
use das_pattern::{CommPattern, SimulationMap, TimedArc};

fn arc(g: &Graph, from: u32, to: u32, round: u32) -> TimedArc {
    let e = g.find_edge(NodeId(from), NodeId(to)).expect("edge exists");
    TimedArc {
        round,
        arc: g.arc_from(e, NodeId(from)),
    }
}

/// A diamond: 1 -> {0, 2} in round 0, then {0, 2} -> 1 back in round 1,
/// then 1 -> 0 again in round 2 (depends on both replies).
fn diamond(g: &Graph) -> CommPattern {
    CommPattern::from_timed_arcs(
        g.edge_count(),
        vec![
            arc(g, 1, 0, 0),
            arc(g, 1, 2, 0),
            arc(g, 0, 1, 1),
            arc(g, 2, 1, 1),
            arc(g, 1, 0, 2),
        ],
    )
}

#[test]
fn diamond_accepts_identity_and_shift() {
    let g = generators::path(3);
    let p = diamond(&g);
    assert!(verify_simulation(&g, &p, &identity_map(&p)).is_ok());
    assert!(verify_simulation(&g, &p, &shifted_map(&p, 100)).is_ok());
}

#[test]
fn diamond_rejects_one_late_branch() {
    let g = generators::path(3);
    let p = diamond(&g);
    let mut map: SimulationMap = identity_map(&p);
    // delay only node 2's reply past the final send's departure
    map.insert(arc(&g, 2, 1, 1), 5);
    assert!(verify_simulation(&g, &p, &map).is_err());
    // ...unless the final send moves too
    map.insert(arc(&g, 1, 0, 2), 7);
    assert!(verify_simulation(&g, &p, &map).is_ok());
}

#[test]
fn independent_branches_may_stretch_apart() {
    let g = generators::path(3);
    let p = diamond(&g);
    let mut map: SimulationMap = identity_map(&p);
    // the two round-0 sends have no causal order between them
    map.insert(arc(&g, 1, 0, 0), 50);
    map.insert(arc(&g, 0, 1, 1), 51);
    map.insert(arc(&g, 1, 0, 2), 52);
    // the other branch keeps its early times — still valid
    assert!(verify_simulation(&g, &p, &map).is_ok());
}

#[test]
fn self_crossing_chains_on_cycles() {
    // a message looping around a cycle revisits nodes: causality must
    // still chain through repeated visits
    let g = generators::cycle(4);
    let hops = [(0u32, 1u32), (1, 2), (2, 3), (3, 0), (0, 1)];
    let tas: Vec<TimedArc> = hops
        .iter()
        .enumerate()
        .map(|(r, &(a, b))| arc(&g, a, b, r as u32))
        .collect();
    let p = CommPattern::from_timed_arcs(g.edge_count(), tas.clone());
    // compressing the loop below its causal length fails
    let mut map: SimulationMap = tas.iter().map(|&ta| (ta, ta.round / 2)).collect();
    assert!(verify_simulation(&g, &p, &map).is_err());
    // stretching it is fine
    map = tas.iter().map(|&ta| (ta, ta.round * 3)).collect();
    assert!(verify_simulation(&g, &p, &map).is_ok());
}
