//! The executor-side recording probe.

use crate::config::ObsConfig;
use crate::event::{Stage, TraceEvent};
use crate::live::{BigRoundDelta, LiveHub};
use crate::metrics::{Histogram, MetricsRegistry};
use crate::profile::LoadProfile;
use crate::report::{ObsReport, ShardLoad};
use std::sync::Arc;

/// Incremental recorder threaded through an executor run (one per shard in
/// the sharded executor).
///
/// Every hook is self-guarded: when recording is disabled each call is a
/// single predictable branch, so the executor needs no `if obs` wrappers
/// and the disabled path stays byte-identical to the uninstrumented one.
/// Nothing recorded here feeds back into execution.
#[derive(Debug)]
pub struct ExecObs {
    on: bool,
    full: bool,
    wall: bool,
    lane: u32,
    max_events: usize,
    phase_len: u64,
    profile: LoadProfile,
    congestion: Histogram,
    queue_depth: Histogram,
    inbox_depth: Histogram,
    steps: u64,
    delivered: u64,
    late: u64,
    cross_sent: u64,
    invalid: u64,
    barrier_wait_ns: u64,
    events: Vec<TraceEvent>,
    events_dropped: u64,
    // Per-big-round scratch, flushed by `end_big_round`.
    phase_inject: Vec<u64>,
    touched: Vec<usize>,
    br_steps: u64,
    br_delivered: u64,
    br_late: u64,
    br_cross: u64,
    // Live publication (write-only; never read back into execution).
    live: Option<Arc<LiveHub>>,
    published_rounds: usize,
    published_events: usize,
}

impl ExecObs {
    /// A probe that records nothing; all hooks are no-ops.
    pub fn disabled() -> Self {
        ExecObs {
            on: false,
            full: false,
            wall: false,
            lane: 0,
            max_events: 0,
            phase_len: 1,
            profile: LoadProfile::new(),
            congestion: Histogram::default(),
            queue_depth: Histogram::default(),
            inbox_depth: Histogram::default(),
            steps: 0,
            delivered: 0,
            late: 0,
            cross_sent: 0,
            invalid: 0,
            barrier_wait_ns: 0,
            events: Vec::new(),
            events_dropped: 0,
            phase_inject: Vec::new(),
            touched: Vec::new(),
            br_steps: 0,
            br_delivered: 0,
            br_late: 0,
            br_cross: 0,
            live: None,
            published_rounds: 0,
            published_events: 0,
        }
    }

    /// A probe for one executor lane (`lane` = shard index, 0 when fused),
    /// recording at the level `config` asks for.
    pub fn new(config: &ObsConfig, lane: u32) -> Self {
        let mut p = ExecObs::disabled();
        if config.enabled() {
            p.on = true;
            p.full = config.events_enabled();
            p.wall = config.wall_clock;
            p.lane = lane;
            p.max_events = config.max_events;
        }
        p
    }

    /// Attaches a live hub: from now on `end_big_round` publishes this
    /// lane's deltas into it. Publication is write-only and happens only
    /// at big-round boundaries, so attaching a hub can never perturb the
    /// run. A `None` hub (or a disabled probe) leaves publication off.
    pub fn attach_live(&mut self, hub: Option<Arc<LiveHub>>) {
        if self.on {
            self.live = hub;
        }
    }

    /// Whether this probe records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.on
    }

    /// Whether the caller should sample wall clocks for this probe (the
    /// nondeterministic side channel; never part of deterministic output).
    #[inline]
    pub fn wall_enabled(&self) -> bool {
        self.on && self.wall
    }

    /// Sizes per-arc scratch and records the phase length used to place
    /// big-round spans on the engine-round clock.
    pub fn init(&mut self, arcs: usize, phase_len: u64) {
        if !self.on {
            return;
        }
        self.phase_len = phase_len.max(1);
        self.phase_inject = vec![0; arcs];
        self.profile.per_edge = vec![0; arcs];
    }

    /// A machine stepped with `inbox_len` queued messages.
    #[inline]
    pub fn on_step(&mut self, inbox_len: usize) {
        if !self.on {
            return;
        }
        self.steps += 1;
        self.br_steps += 1;
        self.inbox_depth.record(inbox_len as u64);
    }

    /// A message was injected onto `arc`, leaving `queue_len` flights
    /// queued there.
    #[inline]
    pub fn on_inject(&mut self, arc: usize, queue_len: usize) {
        if !self.on {
            return;
        }
        self.profile.add_edge(arc, 1);
        self.queue_depth.record(queue_len as u64);
        if arc < self.phase_inject.len() {
            if self.phase_inject[arc] == 0 {
                self.touched.push(arc);
            }
            self.phase_inject[arc] += 1;
        }
    }

    /// A message was handed to another shard's outbox.
    #[inline]
    pub fn on_cross_send(&mut self) {
        if !self.on {
            return;
        }
        self.cross_sent += 1;
        self.br_cross += 1;
    }

    /// A message reached the head of its arc queue in `engine_round`;
    /// `late` means the consumer had already stepped past it.
    #[inline]
    pub fn on_deliver(&mut self, engine_round: u64, late: bool) {
        if !self.on {
            return;
        }
        // checked, not `as usize`: the engine-round cap keeps this small,
        // but a 32-bit target must fail loudly rather than truncate the
        // index and credit the wrong round
        let round = usize::try_from(engine_round).expect("engine round fits usize");
        self.profile.add_round(round, 1);
        if late {
            self.late += 1;
            self.br_late += 1;
        } else {
            self.delivered += 1;
            self.br_delivered += 1;
        }
    }

    /// A machine emitted a message the model forbids (non-neighbor or
    /// oversized); the executor drops it.
    #[inline]
    pub fn on_invalid_send(&mut self) {
        if !self.on {
            return;
        }
        self.invalid += 1;
    }

    /// Wall-clock nanoseconds spent waiting on a shard barrier (side
    /// channel; only sampled when [`ExecObs::wall_enabled`]).
    #[inline]
    pub fn on_barrier_wait_ns(&mut self, ns: u64) {
        if !self.on {
            return;
        }
        self.barrier_wait_ns += ns;
    }

    /// Big round `b` finished: fold this round's per-arc injections into
    /// the congestion histogram and (in full mode) emit its span.
    pub fn end_big_round(&mut self, b: u64) {
        if !self.on {
            return;
        }
        // Capture this round's per-edge injections before the fold below
        // zeroes the scratch; published (write-only) after the round's
        // events are recorded.
        let live_edges: Vec<(usize, u64)> = if self.live.is_some() {
            self.touched
                .iter()
                .map(|&arc| (arc, self.phase_inject[arc]))
                .collect()
        } else {
            Vec::new()
        };
        for &arc in &self.touched {
            self.congestion.record(self.phase_inject[arc]);
            self.phase_inject[arc] = 0;
        }
        let active = self.br_steps + self.br_delivered + self.br_late + self.br_cross > 0
            || !self.touched.is_empty();
        self.touched.clear();
        if self.full && active {
            self.push_event(
                TraceEvent::span(
                    Stage::Execute,
                    self.lane,
                    format!("big-round {b}"),
                    b * self.phase_len,
                    self.phase_len,
                )
                .arg("steps", self.br_steps)
                .arg("delivered", self.br_delivered)
                .arg("late", self.br_late)
                .arg("cross_shard", self.br_cross),
            );
            self.push_event(
                TraceEvent::counter(Stage::Execute, self.lane, "messages", b * self.phase_len)
                    .arg("delivered", self.br_delivered)
                    .arg("late", self.br_late),
            );
        }
        if let Some(hub) = &self.live {
            let delta = BigRoundDelta {
                steps: self.br_steps,
                delivered: self.br_delivered,
                late: self.br_late,
                cross_sent: self.br_cross,
                edges: live_edges,
                round_base: self.published_rounds,
                rounds: self.profile.per_round[self.published_rounds..].to_vec(),
                events: self.events[self.published_events..]
                    .iter()
                    .map(|e| serde_json::to_string(e).expect("event values are finite"))
                    .collect(),
            };
            hub.publish_big_round(self.lane, b, &delta);
            self.published_rounds = self.profile.per_round.len();
            self.published_events = self.events.len();
        }
        self.br_steps = 0;
        self.br_delivered = 0;
        self.br_late = 0;
        self.br_cross = 0;
    }

    fn push_event(&mut self, e: TraceEvent) {
        if self.events.len() < self.max_events {
            self.events.push(e);
        } else {
            self.events_dropped += 1;
        }
    }

    /// Consumes the probe into a report; `None` when recording was off.
    pub fn finish(self) -> Option<ObsReport> {
        if !self.on {
            return None;
        }
        let mut metrics = MetricsRegistry::new();
        metrics.inc("exec.steps", self.steps);
        metrics.inc("exec.delivered", self.delivered);
        metrics.inc("exec.late_messages", self.late);
        metrics.inc("exec.cross_shard_sent", self.cross_sent);
        metrics.inc("exec.invalid_sends", self.invalid);
        metrics.inc("exec.events_dropped", self.events_dropped);
        if self.wall {
            metrics.inc("wall.barrier_wait_ns", self.barrier_wait_ns);
        }
        metrics.put_histogram("exec.arc_congestion_per_phase", self.congestion);
        metrics.put_histogram("exec.queue_depth", self.queue_depth);
        metrics.put_histogram("exec.inbox_depth", self.inbox_depth);
        if let Some(hub) = &self.live {
            hub.merge_metrics(&metrics);
        }
        Some(ObsReport {
            metrics,
            profile: self.profile,
            per_shard: vec![ShardLoad {
                lane: self.lane,
                steps: self.steps,
                delivered: self.delivered,
                late: self.late,
                cross_sent: self.cross_sent,
            }],
            events: self.events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_records_nothing() {
        let mut p = ExecObs::disabled();
        p.init(4, 10);
        p.on_step(3);
        p.on_inject(0, 1);
        p.on_deliver(5, false);
        p.end_big_round(0);
        assert!(!p.enabled());
        assert!(p.finish().is_none());
    }

    #[cfg(feature = "record")]
    #[test]
    fn full_probe_records_metrics_profile_and_events() {
        let mut p = ExecObs::new(&ObsConfig::full(), 2);
        p.init(3, 10);
        // big round 0: two steps, three injections on two arcs, one late.
        p.on_step(0);
        p.on_step(2);
        p.on_inject(1, 1);
        p.on_inject(1, 2);
        p.on_inject(2, 1);
        p.on_cross_send();
        p.on_deliver(7, false);
        p.on_deliver(8, true);
        p.end_big_round(0);
        // big round 1: idle — no span emitted.
        p.end_big_round(1);
        let r = p.finish().unwrap();
        assert_eq!(r.metrics.counter("exec.steps"), 2);
        assert_eq!(r.metrics.counter("exec.delivered"), 1);
        assert_eq!(r.metrics.counter("exec.late_messages"), 1);
        assert_eq!(r.metrics.counter("exec.cross_shard_sent"), 1);
        assert_eq!(r.metrics.counter("wall.barrier_wait_ns"), 0);
        assert!(!r.metrics.counters.contains_key("wall.barrier_wait_ns"));
        let cong = r
            .metrics
            .histogram("exec.arc_congestion_per_phase")
            .unwrap();
        assert_eq!(cong.total, 2); // arcs 1 and 2 touched this phase
        assert_eq!(cong.max, 2);
        assert_eq!(r.profile.per_edge, vec![0, 2, 1]);
        assert_eq!(r.profile.per_round[7], 1);
        assert_eq!(r.profile.per_round[8], 1);
        // one span + one counter for the active big round only.
        assert_eq!(r.events.len(), 2);
        assert_eq!(r.events[0].name, "big-round 0");
        assert_eq!(r.events[0].ts, 0);
        assert_eq!(r.events[0].dur, 10);
        assert_eq!(r.events[0].lane, 2);
    }

    #[cfg(feature = "record")]
    #[test]
    fn metrics_mode_skips_events() {
        let mut p = ExecObs::new(&ObsConfig::metrics(), 0);
        p.init(1, 5);
        p.on_step(0);
        p.on_inject(0, 1);
        p.on_deliver(1, false);
        p.end_big_round(0);
        let r = p.finish().unwrap();
        assert!(r.events.is_empty());
        assert_eq!(r.metrics.counter("exec.delivered"), 1);
    }

    #[cfg(feature = "record")]
    #[test]
    fn attached_hub_sees_big_round_deltas_and_final_metrics() {
        use serde::Value;
        let hub = Arc::new(LiveHub::new());
        let mut p = ExecObs::new(&ObsConfig::full(), 1);
        p.attach_live(Some(Arc::clone(&hub)));
        p.init(3, 10);
        p.on_step(0);
        p.on_inject(2, 1);
        p.on_deliver(0, false);
        p.end_big_round(0);
        // The hub already saw big round 0 while the run is "in flight".
        let v: Value = serde_json::from_str(&hub.render_profile()).unwrap();
        let shards = v.get("shards").unwrap().as_array().unwrap();
        assert_eq!(shards[0].get("shard").and_then(Value::as_u64), Some(1));
        assert_eq!(shards[0].get("delivered").and_then(Value::as_u64), Some(1));
        let top = v.get("top_edges").unwrap().as_array().unwrap();
        assert_eq!(top[0].get("arc").and_then(Value::as_u64), Some(2));
        let (events, next) = hub.render_events_since(0);
        assert_eq!(next, 2); // span + counter for big round 0
        assert!(events.contains("big-round 0"));
        // finish() folds the probe's metrics into the hub.
        let report = p.finish().unwrap();
        assert_eq!(report.per_shard.len(), 1);
        assert_eq!(report.per_shard[0].lane, 1);
        let m: Value = serde_json::from_str(&hub.render_metrics_json()).unwrap();
        assert_eq!(
            m.get("counters")
                .unwrap()
                .get("exec.delivered")
                .and_then(Value::as_u64),
            Some(1)
        );
    }

    #[cfg(feature = "record")]
    #[test]
    fn event_cap_counts_drops() {
        let mut cfg = ObsConfig::full();
        cfg.max_events = 2;
        let mut p = ExecObs::new(&cfg, 0);
        p.init(1, 1);
        for b in 0..3 {
            p.on_step(0);
            p.end_big_round(b);
        }
        let r = p.finish().unwrap();
        assert_eq!(r.events.len(), 2);
        assert_eq!(r.metrics.counter("exec.events_dropped"), 4);
    }
}
