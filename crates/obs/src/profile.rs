//! Per-round and per-edge load profiles.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;

/// Load observed per engine round and per edge (arc), the measured
/// counterpart of the paper's congestion/dilation quantities.
///
/// Indices are engine rounds / arc indices; both vectors grow on demand so
/// a profile can be built incrementally while a run executes.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadProfile {
    /// Messages delivered in each engine round.
    pub per_round: Vec<u64>,
    /// Messages injected onto each arc over the whole run.
    pub per_edge: Vec<u64>,
}

impl LoadProfile {
    /// An empty profile.
    pub fn new() -> Self {
        LoadProfile::default()
    }

    /// Builds a profile from already-collected vectors.
    pub fn from_parts(per_round: Vec<u64>, per_edge: Vec<u64>) -> Self {
        LoadProfile {
            per_round,
            per_edge,
        }
    }

    /// Adds `by` to round `round`, growing the vector as needed.
    #[inline]
    pub fn add_round(&mut self, round: usize, by: u64) {
        if round >= self.per_round.len() {
            self.per_round.resize(round + 1, 0);
        }
        self.per_round[round] += by;
    }

    /// Adds `by` to edge `edge`, growing the vector as needed.
    #[inline]
    pub fn add_edge(&mut self, edge: usize, by: u64) {
        if edge >= self.per_edge.len() {
            self.per_edge.resize(edge + 1, 0);
        }
        self.per_edge[edge] += by;
    }

    /// Total load across all rounds.
    pub fn total(&self) -> u64 {
        self.per_round.iter().sum()
    }

    /// The **earliest** round with the maximum load, or `None` when every
    /// round is zero (including the empty profile). The earliest-max
    /// tie-break makes the peak deterministic and stable under appending
    /// trailing rounds.
    pub fn peak_round(&self) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64)> = None;
        for (r, &c) in self.per_round.iter().enumerate() {
            if c > 0 && best.is_none_or(|(_, m)| c > m) {
                best = Some((r, c));
            }
        }
        best
    }

    /// The `k` heaviest edges as `(edge, load)`, heaviest first, ties
    /// broken by lower edge index; zero-load edges are never reported.
    pub fn top_edges(&self, k: usize) -> Vec<(usize, u64)> {
        Self::top_k(&self.per_edge, k)
    }

    /// The `k` heaviest rounds as `(round, load)`, heaviest first, ties
    /// broken by earlier round; zero-load rounds are never reported.
    pub fn top_rounds(&self, k: usize) -> Vec<(usize, u64)> {
        Self::top_k(&self.per_round, k)
    }

    fn top_k(values: &[u64], k: usize) -> Vec<(usize, u64)> {
        let mut loaded: Vec<(usize, u64)> = values
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v > 0)
            .map(|(i, &v)| (i, v))
            .collect();
        loaded.sort_by_key(|&(i, v)| (Reverse(v), i));
        loaded.truncate(k);
        loaded
    }

    /// Adds another profile element-wise (vectors grow to the longer one).
    pub fn merge(&mut self, other: &LoadProfile) {
        for (r, &c) in other.per_round.iter().enumerate() {
            if c > 0 {
                self.add_round(r, c);
            }
        }
        for (e, &c) in other.per_edge.iter().enumerate() {
            if c > 0 {
                self.add_edge(e, c);
            }
        }
    }

    /// One-line unicode sparkline of the per-round load.
    pub fn sparkline(&self) -> String {
        sparkline(&self.per_round)
    }
}

/// Renders `values` as a unicode sparkline, one glyph per entry, scaled to
/// the maximum value (an all-zero slice renders as all-minimum glyphs).
pub fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    values
        .iter()
        .map(|&c| BARS[((c * 7) / max) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_earliest_max() {
        let p = LoadProfile::from_parts(vec![1, 3, 2, 3], vec![]);
        assert_eq!(p.peak_round(), Some((1, 3)));
    }

    #[test]
    fn all_zero_profile_has_no_peak() {
        assert_eq!(LoadProfile::new().peak_round(), None);
        let p = LoadProfile::from_parts(vec![0, 0, 0], vec![]);
        assert_eq!(p.peak_round(), None);
    }

    #[test]
    fn top_edges_orders_and_filters() {
        let p = LoadProfile::from_parts(vec![], vec![0, 5, 3, 5, 0, 1]);
        assert_eq!(p.top_edges(10), vec![(1, 5), (3, 5), (2, 3), (5, 1)]);
        assert_eq!(p.top_edges(2), vec![(1, 5), (3, 5)]);
        assert!(p.top_edges(0).is_empty());
    }

    #[test]
    fn incremental_adds_grow() {
        let mut p = LoadProfile::new();
        p.add_round(2, 1);
        p.add_round(2, 1);
        p.add_edge(4, 3);
        assert_eq!(p.per_round, vec![0, 0, 2]);
        assert_eq!(p.per_edge, vec![0, 0, 0, 0, 3]);
        assert_eq!(p.total(), 2);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = LoadProfile::from_parts(vec![1, 2], vec![1]);
        let b = LoadProfile::from_parts(vec![0, 1, 4], vec![0, 2]);
        a.merge(&b);
        assert_eq!(a.per_round, vec![1, 3, 4]);
        assert_eq!(a.per_edge, vec![1, 2]);
    }

    #[test]
    fn sparkline_scales() {
        assert_eq!(sparkline(&[0, 7, 14]), "▁▄█");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        assert_eq!(sparkline(&[]), "");
    }
}
