//! # das-obs — deterministic observability for the scheduling pipeline
//!
//! Structured tracing and metrics for the plan → execute → verify pipeline,
//! built around one invariant: **instrumentation can never perturb the
//! schedule**. Every span and event is clocked on the deterministic
//! big-round clock (engine rounds), never on wall time; wall-clock readings
//! are allowed only as a clearly-labelled side channel (`wall_ns` event
//! args, `wall.*` counters) that no deterministic artifact includes.
//!
//! The layer has three cost tiers:
//!
//! * compile-time: the `record` cargo feature (default on) — with it off,
//!   every probe folds to a constant no-op;
//! * runtime: [`ObsMode::Off`] short-circuits every hook behind a single
//!   branch on a bool ([`ExecObs::on`]);
//! * [`ObsMode::Metrics`] keeps counters/histograms/load profiles but skips
//!   event allocation; [`ObsMode::Full`] records trace events too.
//!
//! Outputs: a [`MetricsRegistry`] (counters + fixed-bucket histograms), a
//! [`LoadProfile`] (per-round and per-edge load, generalizing the congest
//! crate's `TraceSummary`), and a [`TraceEvent`] stream exportable as JSONL,
//! Chrome `trace_events` JSON (loadable in Perfetto — one track per shard,
//! one process per pipeline stage), or a plain-text top-K hot report.
//!
//! The [`live`] module adds a *live* view of the same data: probes publish
//! snapshots into a shared [`LiveHub`] at big-round boundaries, and
//! [`http::ObsServer`] serves them over plain HTTP/1.1 while the run is in
//! flight — still without perturbing outcomes (the snapshot-at-barrier
//! invariant; see DESIGN.md).

#![warn(missing_docs)]

mod config;
mod event;
mod metrics;
mod probe;
mod profile;
mod report;

pub mod http;
pub mod live;

pub use config::{ObsConfig, ObsMode};
pub use event::{EventPhase, Stage, TraceEvent};
pub use http::ObsServer;
pub use live::{BigRoundDelta, DoublingAttempt, JobsLive, LinkLive, LiveHub};
pub use metrics::{Histogram, MetricsRegistry};
pub use probe::ExecObs;
pub use profile::{sparkline, LoadProfile};
pub use report::{ObsReport, ObsSummary, ShardLoad};
