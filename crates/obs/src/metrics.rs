//! Counters and fixed-bucket histograms.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fixed-bucket histogram over `u64` samples.
///
/// Bucket `i` counts samples `v` with `v <= bounds[i]` (and greater than
/// the previous bound); the final slot of `counts` is the overflow bucket
/// for samples above every bound. Bounds are fixed at construction so two
/// histograms with the same shape merge exactly — which is how per-shard
/// recordings combine into one report.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive upper bounds of the finite buckets, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; `counts.len() == bounds.len() + 1`, the
    /// last entry being the overflow bucket.
    pub counts: Vec<u64>,
    /// Total number of recorded samples.
    pub total: u64,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
}

/// Number of power-of-two buckets used by [`Histogram::default`]: bounds
/// `1, 2, 4, …, 2^19`, overflow above half a million.
pub(crate) const DEFAULT_POW2_BUCKETS: usize = 20;

impl Default for Histogram {
    fn default() -> Self {
        Histogram::pow2(DEFAULT_POW2_BUCKETS)
    }
}

impl Histogram {
    /// A histogram with `buckets` power-of-two bounds `1, 2, 4, …`.
    pub fn pow2(buckets: usize) -> Self {
        let bounds: Vec<u64> = (0..buckets as u32).map(|i| 1u64 << i).collect();
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            counts,
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let slot = self
            .bounds
            .partition_point(|&b| b < v)
            .min(self.counts.len() - 1);
        self.counts[slot] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Folds another histogram of the same shape into this one.
    ///
    /// # Panics
    /// Panics if the bucket bounds differ — merging histograms of different
    /// shapes would silently misattribute samples.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank quantile, resolved to the matched bucket's upper bound
    /// (or [`Histogram::max`] for the overflow bucket). Returns 0 for an
    /// empty histogram. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return match self.bounds.get(i) {
                    Some(&b) => b.min(self.max),
                    None => self.max,
                };
            }
        }
        self.max
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }
}

/// A named collection of counters and histograms.
///
/// Keys are dot-namespaced (`exec.delivered`, `doubling.attempts`,
/// `wall.barrier_wait_ns`); the `wall.` prefix marks the nondeterministic
/// wall-clock side channel. `BTreeMap` keeps serialization order
/// deterministic.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `by` to counter `name`, creating it at zero first.
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Current value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Inserts a fully-recorded histogram under `name`, merging into any
    /// existing histogram of the same shape.
    pub fn put_histogram(&mut self, name: &str, h: Histogram) {
        match self.histograms.get_mut(name) {
            Some(existing) => existing.merge(&h),
            None => {
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// The histogram under `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds another registry into this one: counters add, histograms of
    /// the same name merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.put_histogram(k, h.clone());
        }
    }

    /// Renders the registry in the Prometheus text exposition format.
    ///
    /// Names are prefixed `das_` with dots mapped to underscores
    /// (`exec.delivered` → `das_exec_delivered`); histograms emit the
    /// standard cumulative `_bucket{le=…}` series plus `_sum` and
    /// `_count`. `BTreeMap` ordering keeps the exposition deterministic.
    pub fn to_prometheus(&self) -> String {
        fn prom_name(key: &str) -> String {
            let mut name = String::with_capacity(key.len() + 4);
            name.push_str("das_");
            for c in key.chars() {
                name.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
            name
        }
        let mut s = String::new();
        for (k, v) in &self.counters {
            let name = prom_name(k);
            s.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let name = prom_name(k);
            s.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &bound) in h.bounds.iter().enumerate() {
                cumulative += h.counts[i];
                s.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
            }
            s.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.total));
            s.push_str(&format!("{name}_sum {}\n", h.sum));
            s.push_str(&format!("{name}_count {}\n", h.total));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_pow2_buckets() {
        let mut h = Histogram::pow2(4); // bounds 1 2 4 8
        for v in [0, 1, 2, 3, 4, 9, 100] {
            h.record(v);
        }
        assert_eq!(h.bounds, vec![1, 2, 4, 8]);
        // 0,1 -> ≤1 | 2 -> ≤2 | 3,4 -> ≤4 | (none ≤8) | 9,100 overflow
        assert_eq!(h.counts, vec![2, 1, 2, 0, 2]);
        assert_eq!(h.total, 7);
        assert_eq!(h.sum, 119);
        assert_eq!(h.max, 100);
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let mut h = Histogram::pow2(8);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 1);
        // rank 50 falls in the ≤64 bucket.
        assert_eq!(h.quantile(0.5), 64);
        // rank 100 falls in the ≤128 bucket, clamped to the observed max.
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(Histogram::default().quantile(0.5), 0);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::pow2(4);
        let mut b = Histogram::pow2(4);
        a.record(3);
        b.record(5);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.total, 3);
        assert_eq!(a.sum, 15);
        assert_eq!(a.max, 7);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_shape_mismatch() {
        let mut a = Histogram::pow2(4);
        a.merge(&Histogram::pow2(5));
    }

    #[test]
    fn prometheus_exposition_renders_counters_and_buckets() {
        let mut m = MetricsRegistry::new();
        m.inc("exec.delivered", 12);
        let mut h = Histogram::pow2(3); // bounds 1 2 4
        for v in [1, 2, 3, 9] {
            h.record(v);
        }
        m.put_histogram("exec.queue_depth", h);
        let text = m.to_prometheus();
        assert!(text.contains("# TYPE das_exec_delivered counter\ndas_exec_delivered 12\n"));
        assert!(text.contains("das_exec_queue_depth_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("das_exec_queue_depth_bucket{le=\"2\"} 2\n"));
        // cumulative: ≤4 covers 1,2,3 — the 9 lands only in +Inf
        assert!(text.contains("das_exec_queue_depth_bucket{le=\"4\"} 3\n"));
        assert!(text.contains("das_exec_queue_depth_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("das_exec_queue_depth_sum 15\n"));
        assert!(text.contains("das_exec_queue_depth_count 4\n"));
    }

    #[test]
    fn registry_counters_and_merge() {
        let mut a = MetricsRegistry::new();
        a.inc("exec.delivered", 10);
        let mut h = Histogram::pow2(4);
        h.record(2);
        a.put_histogram("exec.queue_depth", h);

        let mut b = MetricsRegistry::new();
        b.inc("exec.delivered", 5);
        b.inc("exec.late_messages", 1);
        let mut h2 = Histogram::pow2(4);
        h2.record(4);
        b.put_histogram("exec.queue_depth", h2);

        a.merge(&b);
        assert_eq!(a.counter("exec.delivered"), 15);
        assert_eq!(a.counter("exec.late_messages"), 1);
        assert_eq!(a.counter("exec.absent"), 0);
        assert_eq!(a.histogram("exec.queue_depth").unwrap().total, 2);
    }
}
