//! The assembled observability report and its exporters.

use crate::event::{EventPhase, Stage, TraceEvent};
use crate::metrics::MetricsRegistry;
use crate::profile::LoadProfile;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Everything one observed run recorded: metrics, load profile, events.
///
/// Per-shard recordings merge into a single report (counters add,
/// histograms of the same shape merge, profiles add element-wise, events
/// concatenate in shard order), so the report's deterministic content is
/// independent of thread interleaving.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsReport {
    /// Counters and histograms.
    pub metrics: MetricsRegistry,
    /// Per-round / per-edge load.
    pub profile: LoadProfile,
    /// Per-shard (lane) load totals, in merge order — one entry per probe
    /// that recorded (a fused run contributes a single lane-0 entry).
    pub per_shard: Vec<ShardLoad>,
    /// Trace events on the deterministic big-round clock.
    pub events: Vec<TraceEvent>,
}

/// One executor lane's cumulative load totals.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardLoad {
    /// Lane (shard) index.
    pub lane: u32,
    /// Machine steps executed on this lane.
    pub steps: u64,
    /// Messages delivered on time.
    pub delivered: u64,
    /// Late (dropped) messages.
    pub late: u64,
    /// Messages handed to other shards.
    pub cross_sent: u64,
}

impl ObsReport {
    /// An empty report.
    pub fn new() -> Self {
        ObsReport::default()
    }

    /// Folds another report into this one.
    pub fn merge(&mut self, other: &ObsReport) {
        self.metrics.merge(&other.metrics);
        self.profile.merge(&other.profile);
        self.per_shard.extend(other.per_shard.iter().cloned());
        self.events.extend(other.events.iter().cloned());
    }

    /// Appends one event.
    pub fn push_event(&mut self, e: TraceEvent) {
        self.events.push(e);
    }

    /// Condenses the report into the small deterministic summary persisted
    /// in bench artifacts.
    pub fn summary(&self) -> ObsSummary {
        let (peak_round, peak_round_messages) = self
            .profile
            .peak_round()
            .map_or((0, 0), |(r, c)| (r as u64, c));
        ObsSummary {
            messages: self.metrics.counter("exec.delivered"),
            late_messages: self.metrics.counter("exec.late_messages"),
            peak_round,
            peak_round_messages,
            max_arc_load: self.profile.per_edge.iter().copied().max().unwrap_or(0),
            congestion_p95: self
                .metrics
                .histogram("exec.arc_congestion_per_phase")
                .map_or(0, |h| h.quantile(0.95)),
            max_queue_depth: self
                .metrics
                .histogram("exec.queue_depth")
                .map_or(0, |h| h.max),
            events: self.events.len() as u64,
        }
    }

    /// Renders the event stream as Chrome `trace_events` JSON, loadable in
    /// Perfetto / `chrome://tracing`: one process per pipeline stage, one
    /// thread track per shard lane, timestamps in engine rounds.
    pub fn to_chrome_trace(&self) -> String {
        let mut out: Vec<Value> = Vec::new();
        let stages: BTreeSet<u64> = self.events.iter().map(|e| e.stage.pid()).collect();
        let lanes: BTreeSet<(u64, u32)> = self
            .events
            .iter()
            .map(|e| (e.stage.pid(), e.lane))
            .collect();
        for stage in [Stage::Plan, Stage::Execute, Stage::Verify] {
            if stages.contains(&stage.pid()) {
                out.push(metadata_event("process_name", stage.pid(), 0, stage.name()));
            }
        }
        for &(pid, lane) in &lanes {
            let name = if pid == Stage::Execute.pid() {
                format!("shard-{lane}")
            } else {
                format!("lane-{lane}")
            };
            out.push(metadata_event("thread_name", pid, lane, &name));
        }
        for e in &self.events {
            let mut fields: Vec<(String, Value)> = vec![
                ("name".into(), Value::Str(e.name.clone())),
                ("ph".into(), Value::Str(e.phase.chrome_ph().into())),
                ("pid".into(), Value::U64(e.stage.pid())),
                ("tid".into(), Value::U64(e.lane as u64)),
                ("ts".into(), Value::U64(e.ts)),
            ];
            if e.phase == EventPhase::Complete {
                fields.push(("dur".into(), Value::U64(e.dur)));
            }
            if e.phase == EventPhase::Instant {
                fields.push(("s".into(), Value::Str("t".into())));
            }
            fields.push((
                "args".into(),
                Value::Object(
                    e.args
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::U64(*v)))
                        .collect(),
                ),
            ));
            out.push(Value::Object(fields));
        }
        let doc = Value::Object(vec![
            ("traceEvents".into(), Value::Array(out)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
            (
                "otherData".into(),
                Value::Object(vec![(
                    "clock".into(),
                    Value::Str("deterministic engine rounds".into()),
                )]),
            ),
        ]);
        serde_json::to_string(&doc).expect("trace values are finite")
    }

    /// Renders the event stream as JSONL: one JSON object per line, in
    /// recording order.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for e in &self.events {
            s.push_str(&serde_json::to_string(e).expect("event values are finite"));
            s.push('\n');
        }
        s
    }

    /// Plain-text top-`top` "hot edges / hot phases" report.
    pub fn hot_text(&self, top: usize) -> String {
        let mut s = String::new();
        let summary = self.summary();
        let _ = writeln!(s, "hot report (top {top})");
        let _ = writeln!(
            s,
            "  messages: {} delivered, {} late",
            summary.messages, summary.late_messages
        );
        match self.profile.peak_round() {
            Some((r, c)) => {
                let _ = writeln!(s, "  peak round: {r} ({c} messages)");
            }
            None => {
                let _ = writeln!(s, "  peak round: none (no load recorded)");
            }
        }
        if !self.profile.per_round.is_empty() {
            let _ = writeln!(s, "  per-round load: {}", self.profile.sparkline());
        }
        let _ = writeln!(s, "  hot rounds:");
        for (r, c) in self.profile.top_rounds(top) {
            let _ = writeln!(s, "    round {r:>6}: {c}");
        }
        let _ = writeln!(s, "  hot edges:");
        for (e, c) in self.profile.top_edges(top) {
            let _ = writeln!(s, "    arc {e:>6}: {c}");
        }
        if !self.per_shard.is_empty() {
            let _ = writeln!(s, "  hot shards (by delivered):");
            let mut shards: Vec<&ShardLoad> = self.per_shard.iter().collect();
            shards.sort_by_key(|l| (std::cmp::Reverse(l.delivered), l.lane));
            for l in shards.into_iter().take(top) {
                let _ = writeln!(
                    s,
                    "    shard {:>4}: {} delivered, {} late, {} steps, {} cross-shard",
                    l.lane, l.delivered, l.late, l.steps, l.cross_sent
                );
            }
        }
        let _ = writeln!(s, "  counters:");
        for (k, v) in &self.metrics.counters {
            let _ = writeln!(s, "    {k}: {v}");
        }
        let _ = writeln!(s, "  histograms (p50 / p95 / max over n):");
        for (k, h) in &self.metrics.histograms {
            let _ = writeln!(
                s,
                "    {k}: {} / {} / {} over {}",
                h.quantile(0.5),
                h.quantile(0.95),
                h.max,
                h.total
            );
        }
        s
    }
}

fn metadata_event(kind: &str, pid: u64, tid: u32, name: &str) -> Value {
    Value::Object(vec![
        ("name".into(), Value::Str(kind.into())),
        ("ph".into(), Value::Str("M".into())),
        ("pid".into(), Value::U64(pid)),
        ("tid".into(), Value::U64(tid as u64)),
        (
            "args".into(),
            Value::Object(vec![("name".into(), Value::Str(name.into()))]),
        ),
    ])
}

/// The deterministic per-trial metric summary persisted into
/// `BENCH_*.json` records.
///
/// Every field is a pure function of the schedule (no wall clocks), so
/// bench artifacts stay byte-identical across thread counts.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsSummary {
    /// Messages delivered on time.
    pub messages: u64,
    /// Late (dropped) messages.
    pub late_messages: u64,
    /// Earliest engine round with peak load (0 when no load).
    pub peak_round: u64,
    /// Messages delivered in the peak round.
    pub peak_round_messages: u64,
    /// Heaviest total load on a single arc.
    pub max_arc_load: u64,
    /// 95th percentile of per-arc per-phase congestion.
    pub congestion_p95: u64,
    /// Deepest arc queue observed.
    pub max_queue_depth: u64,
    /// Number of trace events recorded.
    pub events: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    fn sample_report() -> ObsReport {
        let mut r = ObsReport::new();
        r.metrics.inc("exec.delivered", 5);
        r.metrics.inc("exec.late_messages", 1);
        let mut h = Histogram::default();
        h.record(3);
        r.metrics.put_histogram("exec.queue_depth", h);
        r.profile = LoadProfile::from_parts(vec![0, 2, 4], vec![1, 0, 5]);
        r.per_shard.push(ShardLoad {
            lane: 0,
            steps: 3,
            delivered: 5,
            late: 1,
            cross_sent: 0,
        });
        r.push_event(TraceEvent::span(Stage::Execute, 0, "big-round 0", 0, 10).arg("delivered", 2));
        r.push_event(TraceEvent::span(Stage::Execute, 1, "big-round 0", 0, 10));
        r.push_event(TraceEvent::instant(Stage::Verify, 0, "verified", 20));
        r
    }

    #[test]
    fn summary_extracts_deterministic_fields() {
        let s = sample_report().summary();
        assert_eq!(s.messages, 5);
        assert_eq!(s.late_messages, 1);
        assert_eq!(s.peak_round, 2);
        assert_eq!(s.peak_round_messages, 4);
        assert_eq!(s.max_arc_load, 5);
        assert_eq!(s.max_queue_depth, 3);
        assert_eq!(s.events, 3);
    }

    #[test]
    fn merge_combines_shard_reports() {
        let mut a = sample_report();
        let b = sample_report();
        a.merge(&b);
        assert_eq!(a.metrics.counter("exec.delivered"), 10);
        assert_eq!(a.profile.per_round, vec![0, 4, 8]);
        assert_eq!(a.events.len(), 6);
    }

    #[test]
    fn chrome_trace_has_tracks_and_spans() {
        let json = sample_report().to_chrome_trace();
        let v = serde_json::from_str::<Value>(&json).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 2 process_name (execute, verify) + 3 thread_name (2 shards + verify
        // lane) + 3 events.
        assert_eq!(events.len(), 8);
        let shard_tracks: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("thread_name"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(shard_tracks.contains(&"shard-0"));
        assert!(shard_tracks.contains(&"shard-1"));
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .unwrap();
        assert_eq!(span.get("dur").and_then(Value::as_u64), Some(10));
        assert_eq!(
            span.get("args")
                .unwrap()
                .get("delivered")
                .and_then(Value::as_u64),
            Some(2)
        );
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let jsonl = sample_report().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            let v = serde_json::from_str::<Value>(line).unwrap();
            assert!(v.get("name").is_some());
        }
    }

    #[test]
    fn hot_text_lists_hot_rounds_and_edges() {
        let text = sample_report().hot_text(2);
        assert!(text.contains("hot report (top 2)"));
        assert!(text.contains("round      2: 4"));
        assert!(text.contains("arc      2: 5"));
        assert!(text.contains("exec.delivered: 5"));
    }

    #[test]
    fn hot_text_ranks_shards_by_delivered() {
        let mut r = sample_report();
        r.per_shard = vec![
            ShardLoad {
                lane: 0,
                steps: 2,
                delivered: 1,
                late: 0,
                cross_sent: 3,
            },
            ShardLoad {
                lane: 1,
                steps: 5,
                delivered: 9,
                late: 2,
                cross_sent: 0,
            },
            ShardLoad {
                lane: 2,
                steps: 1,
                delivered: 4,
                late: 0,
                cross_sent: 1,
            },
        ];
        let text = r.hot_text(2);
        assert!(text.contains("hot shards (by delivered):"));
        // top-2 by delivered: shard 1 then shard 2; shard 0 is cut.
        let i1 = text.find("shard    1: 9 delivered").expect("shard 1 row");
        let i2 = text.find("shard    2: 4 delivered").expect("shard 2 row");
        assert!(i1 < i2, "heaviest shard listed first");
        assert!(!text.contains("shard    0:"));
    }

    #[test]
    fn hot_text_shard_section_edge_cases() {
        // 0-shard report (no probe recorded): no shard section at all.
        let r = ObsReport::new();
        assert!(!r.hot_text(3).contains("hot shards"));
        // top=0: the header still anchors the section, with no rows.
        let text = sample_report().hot_text(0);
        assert!(text.contains("hot shards (by delivered):"));
        assert!(!text.contains("shard    0:"));
    }

    #[test]
    fn empty_report_renders() {
        let r = ObsReport::new();
        assert!(r.hot_text(3).contains("peak round: none"));
        let v = serde_json::from_str::<Value>(&r.to_chrome_trace()).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
        assert_eq!(r.summary(), ObsSummary::default());
    }
}
