//! The span/event model, clocked on the deterministic big-round clock.

use serde::{Deserialize, Serialize};

/// Pipeline stage a trace event belongs to. Each stage renders as its own
/// process (`pid`) in the Chrome trace export.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Scheduler `plan()` / doubling search.
    Plan,
    /// Fused or sharded plan execution.
    Execute,
    /// Output verification against reference runs.
    Verify,
}

impl Stage {
    /// Chrome trace `pid` for this stage's track group.
    pub fn pid(self) -> u64 {
        match self {
            Stage::Plan => 1,
            Stage::Execute => 2,
            Stage::Verify => 3,
        }
    }

    /// Human-readable stage name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Plan => "plan",
            Stage::Execute => "execute",
            Stage::Verify => "verify",
        }
    }
}

/// Event flavor, mirroring the Chrome `trace_events` phases that the
/// exporter emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventPhase {
    /// A span with a start and duration (`ph: "X"`).
    Complete,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`); args are the series values.
    Counter,
}

impl EventPhase {
    /// The Chrome trace `ph` letter.
    pub fn chrome_ph(self) -> &'static str {
        match self {
            EventPhase::Complete => "X",
            EventPhase::Instant => "i",
            EventPhase::Counter => "C",
        }
    }
}

/// One trace event.
///
/// `ts` and `dur` are **engine rounds on the deterministic big-round
/// clock**, never wall time — so the event stream is a pure function of
/// the run. Wall-clock readings may appear only as `wall_ns`-style entries
/// in `args`, and only when [`crate::ObsConfig::wall_clock`] is set.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Pipeline stage (Chrome `pid`).
    pub stage: Stage,
    /// Lane within the stage (Chrome `tid`): the shard index for executor
    /// events, 0 for single-lane stages.
    pub lane: u32,
    /// Event name, e.g. `big-round 3`.
    pub name: String,
    /// Event flavor.
    pub phase: EventPhase,
    /// Start time in engine rounds.
    pub ts: u64,
    /// Duration in engine rounds (0 for instants/counters).
    pub dur: u64,
    /// Deterministic numeric arguments, in insertion order.
    pub args: Vec<(String, u64)>,
}

impl TraceEvent {
    /// A complete span `[ts, ts + dur]` on the given stage/lane.
    pub fn span(stage: Stage, lane: u32, name: impl Into<String>, ts: u64, dur: u64) -> Self {
        TraceEvent {
            stage,
            lane,
            name: name.into(),
            phase: EventPhase::Complete,
            ts,
            dur,
            args: Vec::new(),
        }
    }

    /// An instant marker at `ts`.
    pub fn instant(stage: Stage, lane: u32, name: impl Into<String>, ts: u64) -> Self {
        TraceEvent {
            stage,
            lane,
            name: name.into(),
            phase: EventPhase::Instant,
            ts,
            dur: 0,
            args: Vec::new(),
        }
    }

    /// A counter sample at `ts`; add series via [`TraceEvent::arg`].
    pub fn counter(stage: Stage, lane: u32, name: impl Into<String>, ts: u64) -> Self {
        TraceEvent {
            stage,
            lane,
            name: name.into(),
            phase: EventPhase::Counter,
            ts,
            dur: 0,
            args: Vec::new(),
        }
    }

    /// Appends a named argument, builder-style.
    pub fn arg(mut self, key: &str, value: u64) -> Self {
        self.args.push((key.to_string(), value));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_fill_fields() {
        let e = TraceEvent::span(Stage::Execute, 3, "big-round 7", 70, 10)
            .arg("delivered", 12)
            .arg("late", 1);
        assert_eq!(e.stage.pid(), 2);
        assert_eq!(e.phase.chrome_ph(), "X");
        assert_eq!(e.lane, 3);
        assert_eq!(e.ts, 70);
        assert_eq!(e.dur, 10);
        assert_eq!(e.args, vec![("delivered".into(), 12), ("late".into(), 1)]);

        let i = TraceEvent::instant(Stage::Verify, 0, "verified", 100);
        assert_eq!(i.phase.chrome_ph(), "i");
        assert_eq!(i.dur, 0);

        let c = TraceEvent::counter(Stage::Execute, 0, "messages", 10).arg("delivered", 4);
        assert_eq!(c.phase.chrome_ph(), "C");
    }

    #[test]
    fn stage_pids_are_distinct() {
        let pids = [Stage::Plan.pid(), Stage::Execute.pid(), Stage::Verify.pid()];
        assert_eq!(pids, [1, 2, 3]);
    }
}
