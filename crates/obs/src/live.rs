//! Shared live-run state for the operator console.
//!
//! A [`LiveHub`] sits between the executing threads and the HTTP server
//! thread (see [`crate::http::ObsServer`]). Executor probes publish one
//! snapshot per lane per **big-round boundary** — the only points where
//! cross-shard state is exchanged anyway — so serving the hub can never
//! perturb a run: nothing is ever read back out of the hub by the engine,
//! and publication happens on the deterministic big-round clock, not on
//! wall-clock timers. See DESIGN.md, "the snapshot-at-barrier invariant".
//!
//! All state lives behind a single [`Mutex`]; each publication is one
//! short lock. Readers (the HTTP endpoints) render JSON / Prometheus text
//! under the same lock, which is fine at human polling rates.

use crate::metrics::MetricsRegistry;
use crate::report::ObsReport;
use serde::Value;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Cap on buffered live trace-event lines; older lines fall off the front
/// (clients learn the dropped range from the `since`/`next` cursors).
pub const LIVE_EVENT_RING: usize = 4096;

/// One per-lane delta published at a big-round boundary.
///
/// Everything here was already collected by the probe for its own report;
/// the delta is a cheap copy of the scratch that `end_big_round` is about
/// to fold away.
#[derive(Clone, Debug, Default)]
pub struct BigRoundDelta {
    /// Machine steps executed this big round.
    pub steps: u64,
    /// Messages delivered on time this big round.
    pub delivered: u64,
    /// Late (dropped) messages this big round.
    pub late: u64,
    /// Messages handed to other shards this big round.
    pub cross_sent: u64,
    /// `(arc, injected)` pairs for arcs touched this big round.
    pub edges: Vec<(usize, u64)>,
    /// First engine round covered by `rounds`.
    pub round_base: usize,
    /// Per-engine-round delivery counts newly finalized this big round.
    pub rounds: Vec<u64>,
    /// Newly recorded trace events, pre-rendered as JSONL lines.
    pub events: Vec<String>,
}

/// One doubling-search attempt, as shown by `GET /doubling`.
#[derive(Clone, Debug)]
pub struct DoublingAttempt {
    /// The congestion guess driving this attempt.
    pub guess: u64,
    /// Rounds the attempted plan would take.
    pub plan_rounds: u64,
    /// Whether the prediction accepted the guess.
    pub accepted: bool,
}

/// Per-link traffic totals for a networked run, as shown by `GET /net`.
///
/// Mirrors `das-core`'s `LinkTraffic` without depending on it (the
/// dependency points the other way).
#[derive(Clone, Debug, Default)]
pub struct LinkLive {
    /// Worker shard index on the far end of the link.
    pub shard: usize,
    /// Frames sent to the worker.
    pub frames_sent: u64,
    /// Payload bytes sent to the worker.
    pub bytes_sent: u64,
    /// Frames received from the worker.
    pub frames_received: u64,
    /// Payload bytes received from the worker.
    pub bytes_received: u64,
}

/// Job-admission counters for a long-lived `dasched serve` daemon, as
/// shown by `GET /jobs`. Published as one authoritative snapshot per
/// change (the [`LiveHub::publish_links`] idiom): the server owns the
/// counts, the hub only mirrors them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JobsLive {
    /// Jobs admitted but not yet executed.
    pub queued: u64,
    /// Jobs that passed admission (cumulative).
    pub admitted: u64,
    /// Jobs refused at admission (cumulative).
    pub rejected: u64,
    /// Jobs executed and verified clean (cumulative).
    pub completed: u64,
    /// Jobs executed but failed verify / budget cross-check / execution
    /// (cumulative).
    pub failed: u64,
    /// Batches executed (cumulative).
    pub batches: u64,
}

/// Cumulative per-lane counters, keyed by lane (shard) index.
#[derive(Clone, Debug, Default)]
struct LaneTotals {
    steps: u64,
    delivered: u64,
    late: u64,
    cross_sent: u64,
    big_round: u64,
}

/// Everything the console can show, guarded by the hub's one mutex.
#[derive(Debug, Default)]
struct LiveState {
    phase: String,
    engine: String,
    shards: usize,
    big_round: u64,
    done: bool,
    lanes: Vec<Option<LaneTotals>>,
    per_edge: Vec<u64>,
    per_round: Vec<u64>,
    metrics: MetricsRegistry,
    doubling_attempts: Vec<DoublingAttempt>,
    doubling_accepted: u64,
    doubling_rejected: u64,
    doubling_fell_back: bool,
    links: Vec<LinkLive>,
    jobs: JobsLive,
    events: VecDeque<String>,
    /// Sequence number of `events.front()`.
    events_base: u64,
    /// Total events ever published (the next cursor).
    events_total: u64,
}

/// The shared live-run state: executor probes write, the HTTP server
/// reads. Cheap to clone behind an `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct LiveHub {
    state: Mutex<LiveState>,
}

impl LiveHub {
    /// A fresh hub in the `idle` phase.
    pub fn new() -> Self {
        let hub = LiveHub::default();
        hub.state.lock().expect("hub lock").phase = "idle".to_string();
        hub
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LiveState> {
        // A poisoned hub only ever means a *reader* panicked; publishing
        // must keep working, so recover the guard.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Sets the run phase shown by `/status` (`idle`, `plan`, `execute`,
    /// `verify`, `done`).
    pub fn set_phase(&self, phase: &str) {
        let mut s = self.lock();
        s.phase = phase.to_string();
        if phase == "done" {
            s.done = true;
        }
    }

    /// Records which engine and how many shards the run uses.
    pub fn set_run_info(&self, engine: &str, shards: usize) {
        let mut s = self.lock();
        s.engine = engine.to_string();
        s.shards = shards;
        if s.lanes.len() < shards {
            s.lanes.resize(shards, None);
        }
    }

    /// Publishes one lane's big-round delta (called by the executor probe
    /// at the big-round boundary, nowhere else).
    pub fn publish_big_round(&self, lane: u32, big_round: u64, delta: &BigRoundDelta) {
        let mut s = self.lock();
        s.big_round = s.big_round.max(big_round + 1);
        let li = lane as usize;
        if s.lanes.len() <= li {
            s.lanes.resize(li + 1, None);
        }
        let totals = s.lanes[li].get_or_insert_with(LaneTotals::default);
        totals.steps += delta.steps;
        totals.delivered += delta.delivered;
        totals.late += delta.late;
        totals.cross_sent += delta.cross_sent;
        totals.big_round = totals.big_round.max(big_round + 1);
        for &(arc, by) in &delta.edges {
            if s.per_edge.len() <= arc {
                s.per_edge.resize(arc + 1, 0);
            }
            s.per_edge[arc] += by;
        }
        for (i, &by) in delta.rounds.iter().enumerate() {
            let r = delta.round_base + i;
            if s.per_round.len() <= r {
                s.per_round.resize(r + 1, 0);
            }
            s.per_round[r] += by;
        }
        for line in &delta.events {
            if s.events.len() == LIVE_EVENT_RING {
                s.events.pop_front();
                s.events_base += 1;
            }
            s.events.push_back(line.clone());
            s.events_total += 1;
        }
    }

    /// Folds a finished probe's metrics into the live registry.
    pub fn merge_metrics(&self, metrics: &MetricsRegistry) {
        self.lock().metrics.merge(metrics);
    }

    /// Publishes one doubling-search attempt.
    pub fn publish_doubling_attempt(&self, guess: u64, plan_rounds: u64, accepted: bool) {
        let mut s = self.lock();
        if accepted {
            s.doubling_accepted += 1;
        } else {
            s.doubling_rejected += 1;
        }
        s.doubling_attempts.push(DoublingAttempt {
            guess,
            plan_rounds,
            accepted,
        });
    }

    /// Marks that the doubling search exhausted its guesses and fell back
    /// to the sequential plan.
    pub fn publish_doubling_fallback(&self) {
        self.lock().doubling_fell_back = true;
    }

    /// Publishes a networked worker's cumulative activity totals (read off
    /// the `ACTIVITY` frame by the coordinator).
    pub fn publish_worker_totals(
        &self,
        lane: u32,
        big_round: u64,
        steps: u64,
        delivered: u64,
        late: u64,
        cross_sent: u64,
    ) {
        let mut s = self.lock();
        s.big_round = s.big_round.max(big_round + 1);
        let li = lane as usize;
        if s.lanes.len() <= li {
            s.lanes.resize(li + 1, None);
        }
        s.lanes[li] = Some(LaneTotals {
            steps,
            delivered,
            late,
            cross_sent,
            big_round: big_round + 1,
        });
    }

    /// Replaces the per-link traffic snapshot (coordinator-side).
    pub fn publish_links(&self, links: Vec<LinkLive>) {
        self.lock().links = links;
    }

    /// Replaces the job-admission snapshot (serve daemon side).
    pub fn publish_jobs(&self, jobs: JobsLive) {
        self.lock().jobs = jobs;
    }

    /// Publishes the final merged report: the authoritative metrics and
    /// profile replace the incrementally accumulated ones, and the phase
    /// flips to `done`.
    pub fn publish_final(&self, report: &ObsReport) {
        let mut s = self.lock();
        s.metrics = report.metrics.clone();
        if !report.profile.per_edge.is_empty() {
            s.per_edge = report.profile.per_edge.clone();
        }
        if !report.profile.per_round.is_empty() {
            s.per_round = report.profile.per_round.clone();
        }
        for load in &report.per_shard {
            let li = load.lane as usize;
            if s.lanes.len() <= li {
                s.lanes.resize(li + 1, None);
            }
            let big_round = s.lanes[li].as_ref().map_or(0, |t| t.big_round);
            s.lanes[li] = Some(LaneTotals {
                steps: load.steps,
                delivered: load.delivered,
                late: load.late,
                cross_sent: load.cross_sent,
                big_round,
            });
        }
        s.phase = "done".to_string();
        s.done = true;
    }

    // ------------------------------------------------------------ readers

    /// `GET /status` body.
    pub fn render_status(&self) -> String {
        let s = self.lock();
        let doc = Value::Object(vec![
            ("phase".into(), Value::Str(s.phase.clone())),
            ("engine".into(), Value::Str(s.engine.clone())),
            ("shards".into(), Value::U64(s.shards as u64)),
            ("big_round".into(), Value::U64(s.big_round)),
            ("done".into(), Value::Bool(s.done)),
            ("events_total".into(), Value::U64(s.events_total)),
        ]);
        serde_json::to_string(&doc).expect("status is finite")
    }

    /// `GET /profile` body: per-shard totals plus the heaviest edges and
    /// the per-round load (bounded to the trailing `LIVE_EVENT_RING`
    /// rounds so the response stays small on long runs).
    pub fn render_profile(&self) -> String {
        let s = self.lock();
        let shards: Vec<Value> = s
            .lanes
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (i, t)))
            .map(|(i, t)| {
                Value::Object(vec![
                    ("shard".into(), Value::U64(i as u64)),
                    ("steps".into(), Value::U64(t.steps)),
                    ("delivered".into(), Value::U64(t.delivered)),
                    ("late".into(), Value::U64(t.late)),
                    ("cross_sent".into(), Value::U64(t.cross_sent)),
                    ("big_round".into(), Value::U64(t.big_round)),
                ])
            })
            .collect();
        let mut top: Vec<(usize, u64)> = s
            .per_edge
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v > 0)
            .map(|(i, &v)| (i, v))
            .collect();
        top.sort_by_key(|&(i, v)| (std::cmp::Reverse(v), i));
        top.truncate(64);
        let top_edges: Vec<Value> = top
            .into_iter()
            .map(|(arc, load)| {
                Value::Object(vec![
                    ("arc".into(), Value::U64(arc as u64)),
                    ("load".into(), Value::U64(load)),
                ])
            })
            .collect();
        let tail_base = s.per_round.len().saturating_sub(LIVE_EVENT_RING);
        let per_round: Vec<Value> = s.per_round[tail_base..]
            .iter()
            .map(|&v| Value::U64(v))
            .collect();
        let doc = Value::Object(vec![
            ("shards".into(), Value::Array(shards)),
            ("top_edges".into(), Value::Array(top_edges)),
            ("per_round_base".into(), Value::U64(tail_base as u64)),
            ("per_round".into(), Value::Array(per_round)),
            (
                "total_load".into(),
                Value::U64(s.per_round.iter().sum::<u64>()),
            ),
        ]);
        serde_json::to_string(&doc).expect("profile is finite")
    }

    /// `GET /metrics` body (JSON form): counters plus histogram summaries.
    pub fn render_metrics_json(&self) -> String {
        let s = self.lock();
        let counters: Vec<(String, Value)> = s
            .metrics
            .counters
            .iter()
            .map(|(k, &v)| (k.clone(), Value::U64(v)))
            .collect();
        let histograms: Vec<(String, Value)> = s
            .metrics
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Value::Object(vec![
                        ("count".into(), Value::U64(h.total)),
                        ("sum".into(), Value::U64(h.sum)),
                        ("max".into(), Value::U64(h.max)),
                        ("p50".into(), Value::U64(h.quantile(0.5))),
                        ("p95".into(), Value::U64(h.quantile(0.95))),
                    ]),
                )
            })
            .collect();
        let doc = Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("histograms".into(), Value::Object(histograms)),
        ]);
        serde_json::to_string(&doc).expect("metrics are finite")
    }

    /// `GET /metrics?format=prometheus` body.
    pub fn render_metrics_prometheus(&self) -> String {
        self.lock().metrics.to_prometheus()
    }

    /// `GET /doubling` body.
    pub fn render_doubling(&self) -> String {
        let s = self.lock();
        let attempts: Vec<Value> = s
            .doubling_attempts
            .iter()
            .map(|a| {
                Value::Object(vec![
                    ("guess".into(), Value::U64(a.guess)),
                    ("plan_rounds".into(), Value::U64(a.plan_rounds)),
                    ("accepted".into(), Value::Bool(a.accepted)),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("attempts".into(), Value::Array(attempts)),
            ("accepted".into(), Value::U64(s.doubling_accepted)),
            ("rejected_precheck".into(), Value::U64(s.doubling_rejected)),
            ("fell_back".into(), Value::Bool(s.doubling_fell_back)),
        ]);
        serde_json::to_string(&doc).expect("doubling log is finite")
    }

    /// `GET /net` body: per-link coordinator↔worker traffic.
    pub fn render_net(&self) -> String {
        let s = self.lock();
        let links: Vec<Value> = s
            .links
            .iter()
            .map(|l| {
                Value::Object(vec![
                    ("shard".into(), Value::U64(l.shard as u64)),
                    ("frames_sent".into(), Value::U64(l.frames_sent)),
                    ("bytes_sent".into(), Value::U64(l.bytes_sent)),
                    ("frames_received".into(), Value::U64(l.frames_received)),
                    ("bytes_received".into(), Value::U64(l.bytes_received)),
                ])
            })
            .collect();
        let doc = Value::Object(vec![("links".into(), Value::Array(links))]);
        serde_json::to_string(&doc).expect("net view is finite")
    }

    /// `GET /jobs` body: the serve daemon's admission counters.
    pub fn render_jobs(&self) -> String {
        let s = self.lock();
        let doc = Value::Object(vec![
            ("queued".into(), Value::U64(s.jobs.queued)),
            ("admitted".into(), Value::U64(s.jobs.admitted)),
            ("rejected".into(), Value::U64(s.jobs.rejected)),
            ("completed".into(), Value::U64(s.jobs.completed)),
            ("failed".into(), Value::U64(s.jobs.failed)),
            ("batches".into(), Value::U64(s.jobs.batches)),
        ]);
        serde_json::to_string(&doc).expect("jobs view is finite")
    }

    /// `GET /events?since=N` body: the buffered JSONL tail starting at
    /// sequence `since`, and the cursor to pass as the next `since`. A
    /// `since` beyond the newest sequence yields an empty body (never a
    /// clamped replay).
    pub fn render_events_since(&self, since: u64) -> (String, u64) {
        let s = self.lock();
        let start = since.max(s.events_base);
        // checked, not `as usize`: a since near u64::MAX must skip
        // everything on 32-bit targets too, not truncate into a replay
        let skip = usize::try_from(start - s.events_base).unwrap_or(usize::MAX);
        let mut body = String::new();
        for line in s.events.iter().skip(skip) {
            body.push_str(line);
            body.push('\n');
        }
        (body, s.events_total)
    }

    /// Convenience around [`ShardLoad`]-bearing reports for tests.
    pub fn shard_count(&self) -> usize {
        self.lock().shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::LoadProfile;
    use crate::report::ShardLoad;

    #[test]
    fn status_reflects_phase_and_round() {
        let hub = LiveHub::new();
        hub.set_run_info("columnar", 3);
        hub.set_phase("execute");
        hub.publish_big_round(
            1,
            4,
            &BigRoundDelta {
                steps: 2,
                delivered: 3,
                ..BigRoundDelta::default()
            },
        );
        let v: Value = serde_json::from_str(&hub.render_status()).unwrap();
        assert_eq!(v.get("phase").and_then(Value::as_str), Some("execute"));
        assert_eq!(v.get("engine").and_then(Value::as_str), Some("columnar"));
        assert_eq!(v.get("shards").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("big_round").and_then(Value::as_u64), Some(5));
    }

    #[test]
    fn profile_accumulates_edges_and_rounds() {
        let hub = LiveHub::new();
        hub.publish_big_round(
            0,
            0,
            &BigRoundDelta {
                delivered: 2,
                edges: vec![(3, 2)],
                round_base: 0,
                rounds: vec![1, 1],
                ..BigRoundDelta::default()
            },
        );
        hub.publish_big_round(
            0,
            1,
            &BigRoundDelta {
                delivered: 1,
                edges: vec![(3, 1), (1, 4)],
                round_base: 2,
                rounds: vec![1],
                ..BigRoundDelta::default()
            },
        );
        let v: Value = serde_json::from_str(&hub.render_profile()).unwrap();
        let top = v.get("top_edges").unwrap().as_array().unwrap();
        // arc 1 carries 4, arc 3 carries 3.
        assert_eq!(top[0].get("arc").and_then(Value::as_u64), Some(1));
        assert_eq!(top[0].get("load").and_then(Value::as_u64), Some(4));
        assert_eq!(top[1].get("arc").and_then(Value::as_u64), Some(3));
        assert_eq!(top[1].get("load").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("total_load").and_then(Value::as_u64), Some(3));
        let shards = v.get("shards").unwrap().as_array().unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].get("delivered").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn events_ring_drops_oldest_and_reports_cursor() {
        let hub = LiveHub::new();
        let lines: Vec<String> = (0..LIVE_EVENT_RING + 10)
            .map(|i| format!("{{\"i\":{i}}}"))
            .collect();
        hub.publish_big_round(
            0,
            0,
            &BigRoundDelta {
                events: lines,
                ..BigRoundDelta::default()
            },
        );
        let (body, next) = hub.render_events_since(0);
        assert_eq!(next, (LIVE_EVENT_RING + 10) as u64);
        assert_eq!(body.lines().count(), LIVE_EVENT_RING);
        assert!(body.starts_with("{\"i\":10}"));
        let (tail, _) = hub.render_events_since(next - 2);
        assert_eq!(tail.lines().count(), 2);
        let (empty, _) = hub.render_events_since(next);
        assert!(empty.is_empty());
    }

    #[test]
    fn doubling_log_renders_attempts() {
        let hub = LiveHub::new();
        hub.publish_doubling_attempt(4, 100, false);
        hub.publish_doubling_attempt(8, 60, true);
        hub.publish_doubling_fallback();
        let v: Value = serde_json::from_str(&hub.render_doubling()).unwrap();
        assert_eq!(v.get("accepted").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("rejected_precheck").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("fell_back"), Some(&Value::Bool(true)));
        assert_eq!(v.get("attempts").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn final_report_overwrites_with_authoritative_totals() {
        let hub = LiveHub::new();
        hub.publish_big_round(
            0,
            0,
            &BigRoundDelta {
                delivered: 1,
                edges: vec![(0, 1)],
                ..BigRoundDelta::default()
            },
        );
        let mut report = ObsReport::new();
        report.metrics.inc("exec.delivered", 9);
        report.profile = LoadProfile::from_parts(vec![4, 5], vec![9]);
        report.per_shard.push(ShardLoad {
            lane: 0,
            steps: 3,
            delivered: 9,
            late: 0,
            cross_sent: 0,
        });
        hub.publish_final(&report);
        let v: Value = serde_json::from_str(&hub.render_status()).unwrap();
        assert_eq!(v.get("phase").and_then(Value::as_str), Some("done"));
        let m: Value = serde_json::from_str(&hub.render_metrics_json()).unwrap();
        assert_eq!(
            m.get("counters")
                .unwrap()
                .get("exec.delivered")
                .and_then(Value::as_u64),
            Some(9)
        );
        let p: Value = serde_json::from_str(&hub.render_profile()).unwrap();
        assert_eq!(p.get("total_load").and_then(Value::as_u64), Some(9));
    }

    #[test]
    fn worker_totals_are_cumulative_overwrites() {
        let hub = LiveHub::new();
        hub.publish_worker_totals(2, 0, 5, 4, 0, 1);
        hub.publish_worker_totals(2, 1, 9, 8, 1, 2);
        let v: Value = serde_json::from_str(&hub.render_profile()).unwrap();
        let shards = v.get("shards").unwrap().as_array().unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].get("shard").and_then(Value::as_u64), Some(2));
        assert_eq!(shards[0].get("steps").and_then(Value::as_u64), Some(9));
        assert_eq!(shards[0].get("late").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn jobs_snapshot_renders() {
        let hub = LiveHub::new();
        hub.publish_jobs(JobsLive {
            queued: 2,
            admitted: 10,
            rejected: 3,
            completed: 7,
            failed: 1,
            batches: 4,
        });
        let v: Value = serde_json::from_str(&hub.render_jobs()).unwrap();
        assert_eq!(v.get("queued").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("admitted").and_then(Value::as_u64), Some(10));
        assert_eq!(v.get("rejected").and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("completed").and_then(Value::as_u64), Some(7));
        assert_eq!(v.get("batches").and_then(Value::as_u64), Some(4));
    }

    #[test]
    fn events_since_beyond_newest_is_empty_even_at_u64_max() {
        let hub = LiveHub::new();
        hub.publish_big_round(
            0,
            0,
            &BigRoundDelta {
                events: vec!["{\"i\":0}".to_string()],
                ..BigRoundDelta::default()
            },
        );
        let (body, next) = hub.render_events_since(u64::MAX);
        assert!(body.is_empty());
        assert_eq!(next, 1);
    }

    #[test]
    fn net_links_render() {
        let hub = LiveHub::new();
        hub.publish_links(vec![LinkLive {
            shard: 1,
            frames_sent: 10,
            bytes_sent: 300,
            frames_received: 9,
            bytes_received: 250,
        }]);
        let v: Value = serde_json::from_str(&hub.render_net()).unwrap();
        let links = v.get("links").unwrap().as_array().unwrap();
        assert_eq!(
            links[0].get("bytes_sent").and_then(Value::as_u64),
            Some(300)
        );
    }
}
