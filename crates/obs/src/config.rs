//! Runtime observability configuration.

use serde::{Deserialize, Serialize};

/// How much the pipeline records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObsMode {
    /// Record nothing; every probe is a single-branch no-op.
    #[default]
    Off,
    /// Counters, histograms, and load profiles — no trace events.
    Metrics,
    /// Everything in [`ObsMode::Metrics`] plus the trace-event stream.
    Full,
}

/// Runtime configuration for the observability layer.
///
/// All recording is clocked on the deterministic big-round clock;
/// `wall_clock` additionally samples wall time into a side channel
/// (`wall_ns` event args and `wall.*` counters) that deterministic
/// artifacts never include.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// Recording tier.
    pub mode: ObsMode,
    /// Sample wall-clock durations (barrier waits, stage times) into the
    /// nondeterministic side channel. Off by default so exports are a pure
    /// function of the run.
    pub wall_clock: bool,
    /// Cap on recorded trace events per probe; further events are counted
    /// in `exec.events_dropped` instead of allocated.
    pub max_events: usize,
}

/// Default cap on trace events recorded by a single probe.
pub const DEFAULT_MAX_EVENTS: usize = 1 << 16;

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::off()
    }
}

impl ObsConfig {
    /// Recording disabled entirely.
    pub fn off() -> Self {
        ObsConfig {
            mode: ObsMode::Off,
            wall_clock: false,
            max_events: DEFAULT_MAX_EVENTS,
        }
    }

    /// Counters, histograms, and load profiles only.
    pub fn metrics() -> Self {
        ObsConfig {
            mode: ObsMode::Metrics,
            ..ObsConfig::off()
        }
    }

    /// Full recording: metrics plus trace events.
    pub fn full() -> Self {
        ObsConfig {
            mode: ObsMode::Full,
            ..ObsConfig::off()
        }
    }

    /// Parses a mode name (`off` | `metrics` | `full`), as accepted by the
    /// CLI `--obs` flag.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "off" => Some(ObsConfig::off()),
            "metrics" => Some(ObsConfig::metrics()),
            "full" => Some(ObsConfig::full()),
            _ => None,
        }
    }

    /// Whether any recording happens: requires both the `record` cargo
    /// feature and a mode other than [`ObsMode::Off`].
    #[inline]
    pub fn enabled(&self) -> bool {
        cfg!(feature = "record") && self.mode != ObsMode::Off
    }

    /// Whether trace events (not just metrics) are recorded.
    #[inline]
    pub fn events_enabled(&self) -> bool {
        cfg!(feature = "record") && self.mode == ObsMode::Full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_cli_names() {
        assert_eq!(ObsConfig::parse("off").unwrap().mode, ObsMode::Off);
        assert_eq!(ObsConfig::parse("metrics").unwrap().mode, ObsMode::Metrics);
        assert_eq!(ObsConfig::parse("full").unwrap().mode, ObsMode::Full);
        assert!(ObsConfig::parse("verbose").is_none());
    }

    #[test]
    fn off_is_disabled() {
        assert!(!ObsConfig::off().enabled());
        assert!(!ObsConfig::off().events_enabled());
        #[cfg(feature = "record")]
        {
            assert!(ObsConfig::metrics().enabled());
            assert!(!ObsConfig::metrics().events_enabled());
            assert!(ObsConfig::full().events_enabled());
        }
    }
}
