//! Dependency-free HTTP/1.1 server for the live operator console.
//!
//! [`ObsServer::bind`] takes an address (port 0 picks a free port — the
//! CLI prints the standard `listening on ADDR` line) and a shared
//! [`LiveHub`], and serves read-only views of it on a background thread.
//! The accept loop mirrors `das-core::net`'s deadline-bounded style: the
//! listener is non-blocking and polled under a stop flag, every
//! connection gets read/write timeouts, and request heads are read into a
//! bounded buffer — a malformed, oversized, or slow-loris client costs at
//! most one connection thread for one timeout, never the run.
//!
//! Endpoints:
//!
//! | path | body |
//! |---|---|
//! | `GET /` | embedded HTML console (polls the JSON endpoints) |
//! | `GET /status` | run phase, engine, shard count, big round |
//! | `GET /profile` | per-shard totals, heaviest edges, per-round load |
//! | `GET /metrics` | metrics registry as JSON; `?format=prometheus` for text exposition |
//! | `GET /doubling` | doubling-search attempt log and counters |
//! | `GET /net` | per-link coordinator↔worker traffic |
//! | `GET /jobs` | serve-daemon admission counters (queued/admitted/rejected/completed) |
//! | `GET /events?since=N` | JSONL tail of trace events from cursor `N` (non-numeric `N` → 400) |

use crate::live::LiveHub;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest request head the server will buffer before answering 431.
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout: a client that stalls longer than this
/// (slow-loris) gets dropped.
pub const IO_TIMEOUT: Duration = Duration::from_millis(2_000);

/// Accept-loop poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// The embedded operator console page served at `/`.
const CONSOLE_HTML: &str = include_str!("console.html");

/// A running live-observability HTTP server.
///
/// Dropping the server stops the accept loop and joins the server thread;
/// in-flight connection threads finish on their own timeouts.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts serving `hub`.
    ///
    /// # Errors
    /// Returns the bind error if the address is unavailable.
    pub fn bind(addr: &str, hub: Arc<LiveHub>) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("obs-http".to_string())
            .spawn(move || accept_loop(listener, hub, stop_flag))
            .expect("spawn obs server thread");
        Ok(ObsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, hub: Arc<LiveHub>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let hub = Arc::clone(&hub);
                // one thread per connection: a stalled client blocks only
                // itself, and the run never waits on any of this
                let _ = std::thread::Builder::new()
                    .name("obs-conn".to_string())
                    .spawn(move || handle_connection(stream, &hub));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Reads a bounded request head; `None` means malformed/oversized/stalled.
fn read_request_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return None, // clipped request
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
                {
                    return String::from_utf8(buf).ok();
                }
                if buf.len() > MAX_REQUEST_BYTES {
                    return None; // oversized head
                }
            }
            Err(_) => return None, // timeout or reset: slow-loris dropped
        }
    }
}

fn handle_connection(mut stream: TcpStream, hub: &LiveHub) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some(head) = read_request_head(&mut stream) else {
        respond(&mut stream, 400, "text/plain", "bad request\n", &[]);
        return;
    };
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        respond(&mut stream, 405, "text/plain", "method not allowed\n", &[]);
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/" => respond(
            &mut stream,
            200,
            "text/html; charset=utf-8",
            CONSOLE_HTML,
            &[],
        ),
        "/status" => respond(
            &mut stream,
            200,
            "application/json",
            &hub.render_status(),
            &[],
        ),
        "/profile" => respond(
            &mut stream,
            200,
            "application/json",
            &hub.render_profile(),
            &[],
        ),
        "/metrics" => {
            if query_param(query, "format") == Some("prometheus") {
                respond(
                    &mut stream,
                    200,
                    "text/plain; version=0.0.4",
                    &hub.render_metrics_prometheus(),
                    &[],
                );
            } else {
                respond(
                    &mut stream,
                    200,
                    "application/json",
                    &hub.render_metrics_json(),
                    &[],
                );
            }
        }
        "/doubling" => respond(
            &mut stream,
            200,
            "application/json",
            &hub.render_doubling(),
            &[],
        ),
        "/net" => respond(&mut stream, 200, "application/json", &hub.render_net(), &[]),
        "/jobs" => respond(
            &mut stream,
            200,
            "application/json",
            &hub.render_jobs(),
            &[],
        ),
        "/events" => {
            // a missing `since` means "from the start"; a present but
            // non-numeric (or overflowing) one is a client bug and gets a
            // 400, never a silent clamp to 0
            let since = match query_param(query, "since") {
                None => 0,
                Some(v) => match v.parse::<u64>() {
                    Ok(n) => n,
                    Err(_) => {
                        respond(
                            &mut stream,
                            400,
                            "text/plain",
                            "bad since: expected a non-negative integer\n",
                            &[],
                        );
                        return;
                    }
                },
            };
            let (body, next) = hub.render_events_since(since);
            let next_header = format!("X-Obs-Next: {next}");
            respond(
                &mut stream,
                200,
                "application/x-ndjson",
                &body,
                &[&next_header],
            );
        }
        _ => respond(&mut stream, 404, "text/plain", "not found\n", &[]),
    }
}

fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

fn respond(stream: &mut TcpStream, code: u16, content_type: &str, body: &str, extra: &[&str]) {
    let reason = match code {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let mut head = format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for h in extra {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    fn get(addr: SocketAddr, target: &str) -> (u16, String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        let (head, body) = raw.split_once("\r\n\r\n").expect("full response");
        let code = head
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .expect("status code");
        (code, head.to_string(), body.to_string())
    }

    fn test_server() -> (ObsServer, Arc<LiveHub>) {
        let hub = Arc::new(LiveHub::new());
        let server = ObsServer::bind("127.0.0.1:0", Arc::clone(&hub)).unwrap();
        (server, hub)
    }

    #[test]
    fn serves_every_endpoint() {
        let (server, hub) = test_server();
        hub.set_run_info("columnar", 2);
        hub.set_phase("execute");
        hub.merge_metrics(&{
            let mut m = crate::MetricsRegistry::new();
            m.inc("exec.delivered", 7);
            m
        });
        let addr = server.local_addr();
        let (code, _, body) = get(addr, "/status");
        assert_eq!(code, 200);
        let v: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v.get("phase").and_then(Value::as_str), Some("execute"));
        for target in ["/profile", "/doubling", "/net", "/metrics"] {
            let (code, _, body) = get(addr, target);
            assert_eq!(code, 200, "{target}");
            serde_json::from_str::<Value>(&body).expect("JSON body");
        }
        let (code, _, text) = get(addr, "/metrics?format=prometheus");
        assert_eq!(code, 200);
        assert!(text.contains("das_exec_delivered 7"));
        let (code, _, html) = get(addr, "/");
        assert_eq!(code, 200);
        assert!(html.contains("<html"));
        let (code, _, _) = get(addr, "/nope");
        assert_eq!(code, 404);
    }

    #[test]
    fn events_cursor_round_trips_over_http() {
        let (server, hub) = test_server();
        hub.publish_big_round(
            0,
            0,
            &crate::live::BigRoundDelta {
                events: vec!["{\"a\":1}".into(), "{\"a\":2}".into()],
                ..Default::default()
            },
        );
        let (code, head, body) = get(server.local_addr(), "/events?since=0");
        assert_eq!(code, 200);
        assert_eq!(body.lines().count(), 2);
        assert!(head.contains("X-Obs-Next: 2"));
        let (_, head, body) = get(server.local_addr(), "/events?since=2");
        assert!(body.is_empty());
        assert!(head.contains("X-Obs-Next: 2"));
    }

    #[test]
    fn events_since_is_parsed_strictly() {
        let (server, hub) = test_server();
        hub.publish_big_round(
            0,
            0,
            &crate::live::BigRoundDelta {
                events: vec!["{\"a\":1}".into()],
                ..Default::default()
            },
        );
        let addr = server.local_addr();
        // garbage and overflowing cursors are client bugs: 400, not 0
        for target in [
            "/events?since=banana",
            "/events?since=-1",
            "/events?since=1e9",
            "/events?since=99999999999999999999999999",
            "/events?since=",
        ] {
            let (code, _, _) = get(addr, target);
            assert_eq!(code, 400, "{target}");
        }
        // a cursor beyond the newest sequence is valid and yields an
        // empty tail, never a clamped replay
        let (code, head, body) = get(addr, "/events?since=100");
        assert_eq!(code, 200);
        assert!(body.is_empty());
        assert!(head.contains("X-Obs-Next: 1"));
        // missing cursor means "from the start"
        let (code, _, body) = get(addr, "/events");
        assert_eq!(code, 200);
        assert_eq!(body.lines().count(), 1);
        // an oversized query string is still a valid head: parsed, then
        // rejected on the bad cursor rather than crashing the server
        let big = format!("/events?since={}", "9".repeat(4096));
        let (code, _, _) = get(addr, &big);
        assert_eq!(code, 400);
    }

    #[test]
    fn jobs_endpoint_serves_admission_counters() {
        let (server, hub) = test_server();
        hub.publish_jobs(crate::live::JobsLive {
            queued: 1,
            admitted: 5,
            rejected: 2,
            completed: 4,
            failed: 0,
            batches: 2,
        });
        let (code, _, body) = get(server.local_addr(), "/jobs");
        assert_eq!(code, 200);
        let v: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v.get("admitted").and_then(Value::as_u64), Some(5));
        assert_eq!(v.get("rejected").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn malformed_and_oversized_requests_get_rejected() {
        let (server, _hub) = test_server();
        let addr = server.local_addr();
        // clipped request: the client hangs up before finishing the head
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /st").unwrap();
        drop(s);
        // oversized head: rejected with 400 once past the cap
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let junk = vec![b'a'; MAX_REQUEST_BYTES + 1024];
        s.write_all(b"GET / HTTP/1.1\r\nX-Junk: ").unwrap();
        s.write_all(&junk).unwrap();
        let mut raw = String::new();
        let _ = s.read_to_string(&mut raw);
        assert!(raw.starts_with("HTTP/1.1 400"), "got: {raw:.40}");
        // non-GET methods are refused
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s.write_all(b"POST /status HTTP/1.1\r\n\r\n").unwrap();
        let mut raw = String::new();
        let _ = s.read_to_string(&mut raw);
        assert!(raw.starts_with("HTTP/1.1 405"));
        // the server still answers normal requests afterwards
        let (code, _, _) = get(addr, "/status");
        assert_eq!(code, 200);
    }
}
