//! Vendored-serde compatibility: every persisted metric type must
//! round-trip through the vendored `serde_json` shim, and summaries with
//! missing fields (artifacts written before a field existed) must still
//! load via `#[serde(default)]`-style defaults.

use das_obs::{EventPhase, Histogram, MetricsRegistry, ObsSummary, Stage, TraceEvent};

#[test]
fn histogram_round_trips() {
    let mut h = Histogram::pow2(6);
    for v in [0, 1, 3, 9, 1000] {
        h.record(v);
    }
    let json = serde_json::to_string(&h).unwrap();
    let back: Histogram = serde_json::from_str(&json).unwrap();
    assert_eq!(back, h);
    assert_eq!(back.quantile(0.95), h.quantile(0.95));
}

#[test]
fn metrics_registry_round_trips_with_deterministic_key_order() {
    let mut m = MetricsRegistry::new();
    m.inc("exec.delivered", 42);
    m.inc("doubling.attempts", 3);
    let mut h = Histogram::pow2(4);
    h.record(2);
    m.put_histogram("exec.queue_depth", h);
    let json = serde_json::to_string(&m).unwrap();
    let back: MetricsRegistry = serde_json::from_str(&json).unwrap();
    assert_eq!(back, m);
    // BTreeMap keys serialize sorted, so the artifact is reproducible.
    assert!(json.find("doubling.attempts").unwrap() < json.find("exec.delivered").unwrap());
    assert_eq!(json, serde_json::to_string(&back).unwrap());
}

#[test]
fn trace_event_round_trips() {
    let e = TraceEvent::span(Stage::Execute, 3, "big-round 9", 90, 10)
        .arg("delivered", 7)
        .arg("late", 0);
    let json = serde_json::to_string(&e).unwrap();
    let back: TraceEvent = serde_json::from_str(&json).unwrap();
    assert_eq!(back, e);
    assert_eq!(back.phase, EventPhase::Complete);
    assert_eq!(back.stage, Stage::Execute);
}

#[test]
fn obs_summary_round_trips() {
    let s = ObsSummary {
        messages: 100,
        late_messages: 2,
        peak_round: 17,
        peak_round_messages: 9,
        max_arc_load: 12,
        congestion_p95: 4,
        max_queue_depth: 3,
        events: 40,
    };
    let json = serde_json::to_string(&s).unwrap();
    let back: ObsSummary = serde_json::from_str(&json).unwrap();
    assert_eq!(back, s);
}

/// Fixture: a summary JSON written by a hypothetical older build that knew
/// none of the newer fields must still load (shim `field_or_default`
/// behavior is exercised through real artifact loading in das-bench; here
/// the fixture checks the shape contract directly).
#[test]
fn obs_summary_is_defaultable_field_by_field() {
    let full: ObsSummary = serde_json::from_str(
        r#"{"messages": 5, "late_messages": 0, "peak_round": 1,
            "peak_round_messages": 5, "max_arc_load": 2, "congestion_p95": 1,
            "max_queue_depth": 1, "events": 0}"#,
    )
    .unwrap();
    assert_eq!(full.messages, 5);
    assert_eq!(ObsSummary::default().messages, 0);
}
