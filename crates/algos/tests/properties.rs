//! Property-based tests of the workload algorithms on random graphs.

use das_algos::bfs::HopBfs;
use das_algos::broadcast::SingleBroadcast;
use das_algos::mst::{kruskal_mst, EdgeWeights, MstAlgorithm};
use das_core::run_alone;
use das_graph::{generators, traversal, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The distributed MST equals the centralized Kruskal MST, for any
    /// random graph, weight seed, and fragment cap.
    #[test]
    fn mst_is_exact(n in 8usize..36, gseed in 0u64..500, wseed in 0u64..500,
                    cap in 0u32..12) {
        let g = generators::gnp_connected(n, 3.0 / n as f64, gseed);
        let w = EdgeWeights::random(&g, wseed);
        let algo = MstAlgorithm::new(0, &g, w.clone(), cap);
        let mst = kruskal_mst(&g, &w);
        let r = run_alone(&g, &algo, 1).unwrap();
        for v in g.nodes() {
            prop_assert_eq!(
                r.outputs[v.index()].as_deref(),
                Some(&algo.expected_digest(&g, &mst, v)[..]),
                "node {} (n={}, cap={})", v, n, cap
            );
        }
    }

    /// Fragment decompositions are MST subforests with consistent ids.
    #[test]
    fn fragments_subset_of_mst(n in 8usize..40, seed in 0u64..500, cap in 1u32..16) {
        let g = generators::gnp_connected(n, 3.0 / n as f64, seed);
        let w = EdgeWeights::random(&g, seed ^ 0xF00D);
        let d = das_algos::mst::capped_boruvka(&g, &w, cap);
        let mst: std::collections::HashSet<_> = kruskal_mst(&g, &w).into_iter().collect();
        for e in &d.tree_edges {
            prop_assert!(mst.contains(e));
        }
        // fragment count + tree edges account for every node
        prop_assert_eq!(d.tree_edges.len() + d.count, n);
    }

    /// A BFS workload's outputs equal true hop distances, capped at h.
    #[test]
    fn bfs_distances_exact(n in 6usize..40, seed in 0u64..500, h in 1u32..10,
                           src in 0u32..6) {
        let g = generators::gnp_connected(n, 3.0 / n as f64, seed);
        let src = NodeId(src % n as u32);
        let algo = HopBfs::new(0, &g, src, h);
        let r = run_alone(&g, &algo, 1).unwrap();
        let dist = traversal::bfs_distances(&g, src);
        for v in g.nodes() {
            let want = dist[v.index()].filter(|&d| d <= h);
            let got = r.outputs[v.index()]
                .as_ref()
                .map(|o| u32::from_le_bytes(o[..4].try_into().unwrap()));
            prop_assert_eq!(got, want, "node {}", v);
        }
    }

    /// A broadcast reaches exactly the h-ball of its source.
    #[test]
    fn broadcast_reaches_exactly_the_ball(n in 6usize..40, seed in 0u64..500,
                                          h in 1u32..8, src in 0u32..6) {
        let g = generators::gnp_connected(n, 3.0 / n as f64, seed);
        let src = NodeId(src % n as u32);
        let algo = SingleBroadcast::new(0, &g, src, h);
        let r = run_alone(&g, &algo, 7).unwrap();
        let dist = traversal::bfs_distances(&g, src);
        for v in g.nodes() {
            let inside = dist[v.index()].is_some_and(|d| d <= h);
            prop_assert_eq!(r.outputs[v.index()].is_some(), inside, "node {}", v);
        }
    }
}
