//! Appendix A: `(1+ε)`-approximate distinct elements in `d`-hop
//! neighborhoods via threshold hashing — the paper's worked example of
//! removing shared randomness from a *Bellagio* algorithm.
//!
//! Every node holds an input string; the goal is for each node to estimate
//! the number of distinct strings within `d` hops. With a shared hash seed
//! the algorithm is classical: for each threshold `k_j = (1+ε)^j` and each
//! of `Θ(log n/ε²)` iterations, hash every string to one bit with
//! `Pr[1] = 1 − 2^{−1/k_j}`, OR-flood the bits `d` hops (bundling
//! `Θ(log n)` bits per CONGEST message), and read the count off the
//! majority transition — `O(d·log n/ε³)` rounds.
//!
//! [`estimate_shared`] runs exactly that. [`estimate_private`] removes the
//! shared seed the way Appendix A prescribes: carve clusters of radius
//! `Θ(d·log n)` (Lemma 4.2), share a seed inside each cluster (Lemma 4.3),
//! run the algorithm once per layer with per-cluster seeds — a node's
//! estimate is untouched by foreign seeds as long as its `d`-ball lies in
//! one cluster, since the OR-flood has influence radius exactly `d` — and
//! let each node adopt the estimate from a covering layer.

use das_cluster::{CarveConfig, Clustering, ShareConfig};
use das_congest::{util, Engine, EngineConfig, Protocol, ProtocolNode, RoundContext};
use das_graph::{traversal, Graph, NodeId};

/// Parameters of a distinct-elements instance.
#[derive(Clone, Debug)]
pub struct DistinctConfig {
    /// Neighborhood radius `d`.
    pub radius: u32,
    /// Approximation parameter `ε`.
    pub eps: f64,
    /// Iterations per threshold (`Θ(log n/ε²)`); `None` = derive from `n`.
    pub iterations: Option<usize>,
}

impl DistinctConfig {
    /// Creates a config with derived iteration count.
    pub fn new(radius: u32, eps: f64) -> Self {
        assert!(radius > 0, "radius must be positive");
        assert!(eps > 0.0 && eps <= 1.0, "eps must be in (0, 1]");
        DistinctConfig {
            radius,
            eps,
            iterations: None,
        }
    }

    fn thresholds(&self, n: usize) -> Vec<f64> {
        let mut ks = vec![1.0];
        while *ks.last().expect("non-empty") < n as f64 {
            ks.push(ks.last().expect("non-empty") * (1.0 + self.eps));
        }
        ks
    }

    fn iters(&self, n: usize) -> usize {
        self.iterations.unwrap_or_else(|| {
            ((4.0 * (n.max(2) as f64).ln()) / (self.eps * self.eps)).ceil() as usize
        })
    }
}

/// `Pr[h(x) = 1] = 1 − 2^{−1/k}`, evaluated by seeded hashing — the
/// paper's per-threshold binary hash. Deterministic in `(seed, x, j, i)`.
fn threshold_bit(seed: u64, x: u64, j: u64, i: u64, k: f64) -> bool {
    let h = util::seed_mix(util::seed_mix(seed, x), util::seed_mix(j, i));
    let u = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform in [0,1)
    u < 1.0 - (-1.0 / k).exp2()
}

/// The OR-flooding protocol: bundles of 64 bits, each flooded `d` hops,
/// processed sequentially. Per-node hash seeds are inputs (all equal in
/// the shared-randomness setting; per-cluster in the private setting).
pub struct DistinctProtocol {
    inputs: Vec<u64>,
    seeds: Vec<u64>,
    config: DistinctConfig,
    n: usize,
}

impl DistinctProtocol {
    /// Creates the protocol. `seeds[v]` is the hash seed node `v` uses.
    pub fn new(inputs: Vec<u64>, seeds: Vec<u64>, config: DistinctConfig) -> Self {
        assert_eq!(inputs.len(), seeds.len());
        let n = inputs.len();
        DistinctProtocol {
            inputs,
            seeds,
            config,
            n,
        }
    }

    /// Total (threshold, iteration) bit positions.
    fn total_bits(&self) -> usize {
        self.config.thresholds(self.n).len() * self.config.iters(self.n)
    }

    /// Number of 64-bit bundles.
    fn bundles(&self) -> usize {
        self.total_bits().div_ceil(64)
    }

    /// Engine rounds needed: one `d`-hop flood per bundle plus one readout
    /// round.
    pub fn rounds_needed(&self) -> u64 {
        self.bundles() as u64 * (self.config.radius as u64 + 1)
    }

    /// Decodes a node output into its distinct-count estimate.
    pub fn decode_estimate(payload: &[u8]) -> f64 {
        f64::from_le_bytes(payload[..8].try_into().expect("f64 estimate"))
    }
}

struct DistinctNode {
    /// own bits, one per (j, i) position
    bits: Vec<bool>,
    /// OR-accumulated bits
    acc: Vec<bool>,
    radius: u32,
    thresholds: Vec<f64>,
    iters: usize,
    bundles: usize,
    eps: f64,
}

impl Protocol for DistinctProtocol {
    fn create_node(&self, id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
        let thresholds = self.config.thresholds(self.n);
        let iters = self.config.iters(self.n);
        let seed = self.seeds[id.index()];
        let x = self.inputs[id.index()];
        let mut bits = Vec::with_capacity(thresholds.len() * iters);
        for (j, &k) in thresholds.iter().enumerate() {
            for i in 0..iters {
                bits.push(threshold_bit(seed, x, j as u64, i as u64, k));
            }
        }
        Box::new(DistinctNode {
            acc: bits.clone(),
            bits,
            radius: self.config.radius,
            thresholds,
            iters,
            bundles: self.bundles(),
            eps: self.config.eps,
        })
    }
}

impl DistinctNode {
    fn bundle_mask(&self, b: usize) -> u64 {
        let mut mask = 0u64;
        for o in 0..64 {
            let idx = b * 64 + o;
            if idx < self.acc.len() && self.acc[idx] {
                mask |= 1 << o;
            }
        }
        mask
    }
}

impl ProtocolNode for DistinctNode {
    fn round(&mut self, ctx: &mut RoundContext<'_>) {
        let period = self.radius as u64 + 1;
        let t = ctx.round();
        let b = (t / period) as usize;
        let step = t % period;
        // fold arrivals of the active bundle (sent in the previous round)
        let arrive_b = if step == 0 && b > 0 { b - 1 } else { b };
        for env in ctx.inbox() {
            if let Some((30, words)) = util::decode(&env.payload) {
                let (bb, _) = util::unpack2(words[0]);
                let mask = words[1];
                let base = bb as usize * 64;
                for o in 0..64 {
                    if mask & (1 << o) != 0 {
                        let idx = base + o;
                        if idx < self.acc.len() {
                            self.acc[idx] = true;
                        }
                    }
                }
            }
        }
        let _ = arrive_b;
        if b < self.bundles && step < self.radius as u64 {
            let msg = util::encode(30, &[util::pack2(b as u32, 0), self.bundle_mask(b)]);
            ctx.send_all(msg).expect("bundle fits the model");
        }
    }

    fn is_done(&self) -> bool {
        false // fixed-rounds protocol
    }

    fn output(&self) -> Option<Vec<u8>> {
        // ones per threshold; estimate = first threshold where the OR
        // majority drops below 1/2
        let mut estimate = *self.thresholds.last().expect("non-empty");
        for (j, &k) in self.thresholds.iter().enumerate() {
            let ones = (0..self.iters)
                .filter(|&i| self.acc[j * self.iters + i])
                .count();
            if (ones as f64) < self.iters as f64 / 2.0 {
                estimate = k / (1.0 + self.eps / 2.0).sqrt();
                break;
            }
        }
        let _ = &self.bits;
        Some(estimate.to_le_bytes().to_vec())
    }
}

/// Exact distinct counts per node (centralized reference).
pub fn exact_distinct(g: &Graph, inputs: &[u64], radius: u32) -> Vec<usize> {
    g.nodes()
        .map(|v| {
            let mut vals: Vec<u64> = traversal::ball(g, v, radius)
                .into_iter()
                .map(|u| inputs[u.index()])
                .collect();
            vals.sort_unstable();
            vals.dedup();
            vals.len()
        })
        .collect()
}

/// Runs the shared-randomness algorithm: one global hash seed. Returns
/// `(per-node estimates, rounds used)`.
pub fn estimate_shared(
    g: &Graph,
    inputs: &[u64],
    config: &DistinctConfig,
    shared_seed: u64,
) -> (Vec<f64>, u64) {
    let proto = DistinctProtocol::new(
        inputs.to_vec(),
        vec![shared_seed; g.node_count()],
        config.clone(),
    );
    let rounds = proto.rounds_needed();
    let cfg = EngineConfig::default()
        .with_fixed_rounds(rounds)
        .with_record(false);
    let report = Engine::new(g, cfg)
        .run(&proto)
        .expect("protocol fits the model");
    let est = report
        .outputs
        .iter()
        .map(|o| DistinctProtocol::decode_estimate(o.as_ref().expect("output")))
        .collect();
    (est, report.rounds)
}

/// Result of the private-randomness (Bellagio-derandomized) run.
#[derive(Clone, Debug)]
pub struct PrivateDistinctOutcome {
    /// Per-node estimates (`None` if no layer covered the node's ball —
    /// w.h.p. this does not happen).
    pub estimates: Vec<Option<f64>>,
    /// Total rounds: clustering + sharing + one protocol run per layer.
    pub total_rounds: u64,
    /// Fraction of nodes with at least one covering layer.
    pub coverage: f64,
}

/// Runs the Appendix A derandomization: per-cluster seeds from Lemmas
/// 4.2/4.3, one protocol run per clustering layer, outputs adopted from a
/// covering layer.
pub fn estimate_private(
    g: &Graph,
    inputs: &[u64],
    config: &DistinctConfig,
    num_layers: usize,
    seed: u64,
) -> PrivateDistinctOutcome {
    let n = g.node_count();
    let carve_cfg = CarveConfig::for_dilation(g, config.radius).with_num_layers(num_layers);
    let clustering = Clustering::carve_centralized(g, &carve_cfg, seed);
    let share_cfg = ShareConfig::for_graph(g, carve_cfg.horizon);
    let chunks = das_cluster::share::center_chunks(n, share_cfg.chunks, seed ^ 0xD157);
    let mut total_rounds =
        clustering.precompute_rounds() + num_layers as u64 * share_cfg.rounds_needed();

    let mut estimates: Vec<Option<f64>> = vec![None; n];
    for layer in clustering.layers() {
        let seeds_bytes = das_cluster::share_layer_centralized(layer, &chunks);
        // fold each node's cluster seed words into one u64 hash seed
        let seeds: Vec<u64> = seeds_bytes
            .iter()
            .map(|ws| ws.iter().fold(0u64, |acc, &w| util::seed_mix(acc, w)))
            .collect();
        let proto = DistinctProtocol::new(inputs.to_vec(), seeds, config.clone());
        let rounds = proto.rounds_needed();
        let cfg = EngineConfig::default()
            .with_fixed_rounds(rounds)
            .with_record(false);
        let report = Engine::new(g, cfg)
            .run(&proto)
            .expect("protocol fits the model");
        total_rounds += report.rounds;
        for v in g.nodes() {
            if estimates[v.index()].is_none() && layer.contained_radius[v.index()] >= config.radius
            {
                estimates[v.index()] = Some(DistinctProtocol::decode_estimate(
                    report.outputs[v.index()].as_ref().expect("output"),
                ));
            }
        }
    }
    let covered = estimates.iter().filter(|e| e.is_some()).count();
    PrivateDistinctOutcome {
        estimates,
        total_rounds,
        coverage: covered as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_graph::generators;

    fn inputs_with_duplicates(n: usize, distinct: usize, seed: u64) -> Vec<u64> {
        (0..n)
            .map(|v| util::seed_mix(seed, (v % distinct) as u64))
            .collect()
    }

    /// Fraction of nodes whose estimate is within a factor `tol` of truth.
    fn accuracy(est: &[f64], truth: &[usize], tol: f64) -> f64 {
        let ok = est
            .iter()
            .zip(truth)
            .filter(|&(&e, &t)| {
                let t = t as f64;
                e <= t * tol && e >= t / tol
            })
            .count();
        ok as f64 / est.len() as f64
    }

    #[test]
    fn exact_reference() {
        let g = generators::path(6);
        let inputs = vec![1, 1, 2, 2, 3, 3];
        let d = exact_distinct(&g, &inputs, 1);
        assert_eq!(d, vec![1, 2, 2, 2, 2, 1]);
        assert_eq!(exact_distinct(&g, &inputs, 5), vec![3; 6]);
    }

    #[test]
    fn shared_estimates_track_truth() {
        let g = generators::grid(5, 5);
        let inputs = inputs_with_duplicates(25, 12, 3);
        let config = DistinctConfig::new(2, 0.5);
        let (est, rounds) = estimate_shared(&g, &inputs, &config, 77);
        let truth = exact_distinct(&g, &inputs, 2);
        let acc = accuracy(&est, &truth, 2.5);
        assert!(acc >= 0.8, "accuracy {acc}");
        // round budget matches the O(d log n / eps^3) formula
        let proto = DistinctProtocol::new(inputs.clone(), vec![0; 25], config);
        assert_eq!(rounds, proto.rounds_needed());
    }

    #[test]
    fn estimates_grow_with_radius() {
        let g = generators::path(30);
        let inputs: Vec<u64> = (0..30).map(|v| util::seed_mix(9, v)).collect(); // all distinct
        let c_small = DistinctConfig::new(1, 0.5);
        let c_big = DistinctConfig::new(8, 0.5);
        let (e_small, _) = estimate_shared(&g, &inputs, &c_small, 4);
        let (e_big, _) = estimate_shared(&g, &inputs, &c_big, 4);
        let avg_small: f64 = e_small.iter().sum::<f64>() / 30.0;
        let avg_big: f64 = e_big.iter().sum::<f64>() / 30.0;
        assert!(avg_big > avg_small, "{avg_big} > {avg_small}");
    }

    #[test]
    fn private_matches_shared_quality() {
        let g = generators::grid(5, 5);
        let inputs = inputs_with_duplicates(25, 10, 5);
        let config = DistinctConfig::new(2, 0.5);
        let truth = exact_distinct(&g, &inputs, 2);
        let outcome = estimate_private(&g, &inputs, &config, 14, 21);
        assert!(outcome.coverage >= 0.95, "coverage {}", outcome.coverage);
        let est: Vec<f64> = outcome.estimates.iter().map(|e| e.unwrap_or(0.0)).collect();
        let acc = accuracy(&est, &truth, 2.5);
        assert!(acc >= 0.75, "accuracy {acc}");
        // total rounds include pre-computation
        assert!(outcome.total_rounds > 0);
    }
}
