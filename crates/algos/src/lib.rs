//! # das-algos
//!
//! Concrete distributed algorithms for the `dasched` schedulers — the
//! workloads the paper's introduction motivates and its Section 5 / Appendix
//! A study in depth:
//!
//! * [`broadcast`] — `k`-message `h`-hop broadcast (§1 item I): single
//!   broadcasts as schedulable black boxes, plus the classical combined
//!   `O(k + h)` pipelined protocol as a yardstick.
//! * [`bfs`] — `h`-hop BFS trees (§1 item II): schedulable single-source
//!   BFS, plus a Lenzen–Peleg-style combined `k`-BFS protocol.
//! * [`routing`] — packet routing along fixed paths (§1 item III), the
//!   Leighton–Maggs–Rao special case the paper generalizes.
//! * [`aggregate`] — convergecast + broadcast on a BFS tree.
//! * [`flood`] — leader election by min-id flooding.
//! * [`coloring`] — randomized (Δ+1)-coloring (data-dependent patterns).
//! * [`mst`] — the Section 5 case study: minimum spanning trees with an
//!   explicit congestion/dilation trade-off (pipelined filter-upcast, and a
//!   Kutten–Peleg-style fragment algorithm parameterized by `L`), enabling
//!   the `k`-shot MST experiment.
//! * [`distinct`] — Appendix A: `(1+ε)`-approximate counting of distinct
//!   elements in `d`-hop neighborhoods via threshold hashing, in both the
//!   shared-randomness form and the locally-shared (Bellagio
//!   derandomization) form.
//!
//! Everything here implements [`das_core::BlackBoxAlgorithm`] (so it can be
//! scheduled) and/or [`das_congest::Protocol`] (so it runs standalone with
//! honest round counts).

#![warn(missing_docs)]

pub mod aggregate;
pub mod bfs;
pub mod broadcast;
pub mod coloring;
pub mod distinct;
pub mod flood;
pub mod mst;
pub mod routing;
