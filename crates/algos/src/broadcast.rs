//! `k`-message broadcast (§1 item I).
//!
//! The schedulable unit is [`SingleBroadcast`]: one message flooded to the
//! `h`-hop neighborhood of its source. Running `k` of them together is the
//! classical `k`-broadcast problem; [`KBroadcastProtocol`] is the textbook
//! combined algorithm ("each round, forward one message you have not
//! forwarded, TTL `h`") whose `O(k + h)` round count the schedulers are
//! compared against.

use das_congest::{util, Protocol, ProtocolNode, RoundContext};
use das_core::{Aid, AlgoNode, AlgoSend, BlackBoxAlgorithm};
use das_graph::{Graph, NodeId};
use std::collections::BTreeSet;

/// One source broadcasting one message to its `h`-hop neighborhood, as a
/// schedulable black box. Each node outputs a digest of the message and
/// the round it first arrived.
#[derive(Clone, Debug)]
pub struct SingleBroadcast {
    aid: Aid,
    source: NodeId,
    hops: u32,
    neighbors: Vec<Vec<NodeId>>,
}

impl SingleBroadcast {
    /// Creates the broadcast of message `aid` from `source` to `hops`
    /// hops.
    pub fn new(aid: u64, g: &Graph, source: NodeId, hops: u32) -> Self {
        assert!(hops > 0, "broadcast needs at least one hop");
        SingleBroadcast {
            aid: Aid(aid),
            source,
            hops,
            neighbors: g
                .nodes()
                .map(|v| g.neighbors(v).iter().map(|&(u, _)| u).collect())
                .collect(),
        }
    }
}

struct SingleBroadcastNode {
    neighbors: Vec<NodeId>,
    hops: u32,
    round: u32,
    payload: Option<u64>,
    heard_at: Option<u32>,
    pending: bool,
}

impl BlackBoxAlgorithm for SingleBroadcast {
    fn aid(&self) -> Aid {
        self.aid
    }

    fn rounds(&self) -> u32 {
        self.hops + 1
    }

    fn create_node(&self, v: NodeId, _n: usize, seed: u64) -> Box<dyn AlgoNode> {
        let is_source = v == self.source;
        Box::new(SingleBroadcastNode {
            neighbors: self.neighbors[v.index()].clone(),
            hops: self.hops,
            round: 0,
            payload: is_source.then(|| das_congest::util::seed_mix(seed, self.aid.0)),
            heard_at: is_source.then_some(0),
            pending: is_source,
        })
    }
}

impl AlgoNode for SingleBroadcastNode {
    fn step(&mut self, inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend> {
        for (_, payload) in inbox {
            if self.payload.is_none() {
                self.payload = Some(u64::from_le_bytes(payload[..8].try_into().expect("token")));
                self.heard_at = Some(self.round);
                self.pending = true;
            }
        }
        let mut out = Vec::new();
        if self.pending && self.round < self.hops {
            self.pending = false;
            let bytes = self.payload.expect("pending implies payload").to_le_bytes();
            for &u in &self.neighbors {
                out.push(AlgoSend {
                    to: u,
                    payload: bytes.to_vec(),
                });
            }
        }
        self.round += 1;
        out
    }

    fn output(&self) -> Option<Vec<u8>> {
        self.payload.map(|p| {
            let mut v = p.to_le_bytes().to_vec();
            v.extend_from_slice(&self.heard_at.expect("heard").to_le_bytes());
            v
        })
    }
}

/// The classical combined `k`-broadcast: every node, every round, forwards
/// the smallest-id message it has received but not yet forwarded (if its
/// remaining TTL allows). Runs in `O(k + h)` rounds [Topkis 1985].
///
/// Message ids are the indices `0..k`; node outputs are the XOR-fold of
/// `(id, payload)` pairs received, so completeness is checkable.
pub struct KBroadcastProtocol {
    /// (source, payload) per message.
    pub messages: Vec<(NodeId, u64)>,
    /// Hop limit `h`.
    pub hops: u32,
}

impl KBroadcastProtocol {
    /// Creates the protocol.
    pub fn new(messages: Vec<(NodeId, u64)>, hops: u32) -> Self {
        assert!(!messages.is_empty(), "need at least one message");
        KBroadcastProtocol { messages, hops }
    }

    /// The expected digest at node `v`: XOR over messages whose source is
    /// within `h` hops.
    pub fn expected_digest(&self, g: &Graph, v: NodeId) -> u64 {
        let mut acc = 0u64;
        for (i, &(src, payload)) in self.messages.iter().enumerate() {
            let d = das_graph::traversal::bfs_distances(g, src)[v.index()];
            if d.is_some_and(|d| d <= self.hops) {
                acc ^= das_congest::util::seed_mix(payload, i as u64);
            }
        }
        acc
    }
}

struct KBroadcastNode {
    hops: u32,
    /// (message id) -> (payload, hops traveled when received).
    have: Vec<Option<(u64, u32)>>,
    sent: BTreeSet<u32>,
    digest: u64,
    done_quiet: bool,
}

impl Protocol for KBroadcastProtocol {
    fn create_node(&self, id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
        let mut have = vec![None; self.messages.len()];
        let mut digest = 0u64;
        for (i, &(src, payload)) in self.messages.iter().enumerate() {
            if src == id {
                have[i] = Some((payload, 0));
                digest ^= das_congest::util::seed_mix(payload, i as u64);
            }
        }
        Box::new(KBroadcastNode {
            hops: self.hops,
            have,
            sent: BTreeSet::new(),
            digest,
            done_quiet: false,
        })
    }
}

impl ProtocolNode for KBroadcastNode {
    fn round(&mut self, ctx: &mut RoundContext<'_>) {
        for env in ctx.inbox() {
            if let Some((9, words)) = util::decode(&env.payload) {
                let (id, hops) = util::unpack2(words[0]);
                let payload = words[1];
                if self.have[id as usize].is_none() {
                    self.have[id as usize] = Some((payload, hops));
                    self.digest ^= das_congest::util::seed_mix(payload, id as u64);
                }
            }
        }
        // forward the smallest-id message not yet forwarded whose TTL allows
        let next = self
            .have
            .iter()
            .enumerate()
            .find(|&(i, slot)| {
                slot.is_some_and(|(_, h)| h < self.hops) && !self.sent.contains(&(i as u32))
            })
            .map(|(i, slot)| (i as u32, slot.expect("found")));
        match next {
            Some((id, (payload, hops))) => {
                self.sent.insert(id);
                self.done_quiet = false;
                let msg = util::encode(9, &[util::pack2(id, hops + 1), payload]);
                ctx.send_all(msg).expect("broadcast fits the model");
            }
            None => self.done_quiet = true,
        }
    }

    fn is_done(&self) -> bool {
        self.done_quiet
    }

    fn output(&self) -> Option<Vec<u8>> {
        Some(self.digest.to_le_bytes().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_congest::{Engine, EngineConfig};
    use das_core::{run_alone, DasProblem, Scheduler, SequentialScheduler};
    use das_graph::generators;

    #[test]
    fn single_broadcast_reaches_exactly_the_ball() {
        let g = generators::grid(5, 5);
        let b = SingleBroadcast::new(7, &g, NodeId(12), 3);
        let r = run_alone(&g, &b, 3).unwrap();
        let dist = das_graph::traversal::bfs_distances(&g, NodeId(12));
        for v in g.nodes() {
            let inside = dist[v.index()].unwrap() <= 3;
            assert_eq!(r.outputs[v.index()].is_some(), inside, "node {v}");
        }
    }

    #[test]
    fn single_broadcast_schedulable() {
        let g = generators::grid(4, 4);
        let algos: Vec<Box<dyn BlackBoxAlgorithm>> = (0..5)
            .map(|i| {
                Box::new(SingleBroadcast::new(i, &g, NodeId((i * 3) as u32), 4))
                    as Box<dyn BlackBoxAlgorithm>
            })
            .collect();
        let p = DasProblem::new(&g, algos, 3);
        let outcome = SequentialScheduler.run(&p).unwrap();
        assert!(das_core::verify::against_references(&p, &outcome)
            .unwrap()
            .all_correct());
    }

    #[test]
    fn k_broadcast_pipelines_in_k_plus_h() {
        let g = generators::path(30);
        let k = 12;
        let h = 29u32;
        let messages: Vec<(NodeId, u64)> = (0..k)
            .map(|i| (NodeId(i as u32), 1000 + i as u64))
            .collect();
        let proto = KBroadcastProtocol::new(messages, h);
        let report = Engine::new(&g, EngineConfig::default())
            .run(&proto)
            .unwrap();
        // correctness: digests match the expected k-hop coverage
        for v in g.nodes() {
            let got = u64::from_le_bytes(
                report.outputs[v.index()].as_ref().unwrap()[..8]
                    .try_into()
                    .unwrap(),
            );
            assert_eq!(got, proto.expected_digest(&g, v), "node {v}");
        }
        // pipelining: O(k + h), not k * h
        assert!(
            report.rounds <= (k as u64 + h as u64) + 4,
            "rounds {} exceed k + h + slack",
            report.rounds
        );
    }

    #[test]
    fn k_broadcast_respects_ttl() {
        let g = generators::path(10);
        let proto = KBroadcastProtocol::new(vec![(NodeId(0), 5)], 3);
        let report = Engine::new(&g, EngineConfig::default())
            .run(&proto)
            .unwrap();
        let expect_in = proto.expected_digest(&g, NodeId(3));
        assert_ne!(expect_in, 0);
        let got3 = u64::from_le_bytes(report.outputs[3].as_ref().unwrap()[..8].try_into().unwrap());
        let got4 = u64::from_le_bytes(report.outputs[4].as_ref().unwrap()[..8].try_into().unwrap());
        assert_eq!(got3, expect_in);
        assert_eq!(got4, 0, "TTL 3 must not reach node 4");
    }
}
