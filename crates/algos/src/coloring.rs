//! Randomized (Δ+1)-coloring as a schedulable workload.
//!
//! Classic Luby-style rounds: every uncolored node proposes a random
//! color from its remaining palette; a proposal sticks if no conflicting
//! neighbor proposed the same color this round. The communication pattern
//! is *data- and randomness-dependent* (only uncolored nodes talk), which
//! makes it a good stress test for black-box scheduling: the schedulers
//! cannot predict who sends when.

use das_core::{Aid, AlgoNode, AlgoSend, BlackBoxAlgorithm};
use das_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The coloring workload: `rounds` proposal rounds over palette
/// `0..palette`. Nodes output their color (or `u32::MAX` if still
/// uncolored — increasingly unlikely as rounds grow).
#[derive(Clone, Debug)]
pub struct Coloring {
    aid: Aid,
    rounds: u32,
    palette: u32,
    neighbors: Vec<Vec<NodeId>>,
}

impl Coloring {
    /// Creates the workload with a `(max degree + 1)`-size palette.
    ///
    /// # Panics
    /// Panics if `rounds == 0`.
    pub fn new(aid: u64, g: &Graph, rounds: u32) -> Self {
        assert!(rounds > 0, "need at least one round");
        Coloring {
            aid: Aid(aid),
            rounds,
            palette: g.max_degree() as u32 + 1,
            neighbors: g
                .nodes()
                .map(|v| g.neighbors(v).iter().map(|&(u, _)| u).collect())
                .collect(),
        }
    }

    /// The palette size (max degree + 1).
    pub fn palette(&self) -> u32 {
        self.palette
    }
}

const UNCOLORED: u32 = u32::MAX;

struct ColoringNode {
    neighbors: Vec<NodeId>,
    rounds: u32,
    round: u32,
    color: u32,
    /// colors taken by decided neighbors
    taken: Vec<u32>,
    /// the proposal sent last round, if any
    proposed: Option<u32>,
    rng: StdRng,
    palette: u32,
}

impl BlackBoxAlgorithm for Coloring {
    fn aid(&self) -> Aid {
        self.aid
    }

    fn rounds(&self) -> u32 {
        // each proposal round needs a send + a resolution step
        self.rounds + 1
    }

    fn create_node(&self, v: NodeId, _n: usize, seed: u64) -> Box<dyn AlgoNode> {
        Box::new(ColoringNode {
            neighbors: self.neighbors[v.index()].clone(),
            rounds: self.rounds,
            round: 0,
            color: UNCOLORED,
            taken: Vec::new(),
            proposed: None,
            rng: StdRng::seed_from_u64(seed),
            palette: self.palette,
        })
    }
}

/// payload: tag byte (0 = proposal, 1 = decided) + color u32
fn msg(tag: u8, color: u32) -> Vec<u8> {
    let mut v = vec![tag];
    v.extend_from_slice(&color.to_le_bytes());
    v
}

impl AlgoNode for ColoringNode {
    fn step(&mut self, inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend> {
        // resolve last round's proposal against neighbor traffic
        let mut conflict = false;
        for (_, payload) in inbox {
            let tag = payload[0];
            let color = u32::from_le_bytes(payload[1..5].try_into().expect("color"));
            match tag {
                0 => {
                    if self.proposed == Some(color) {
                        conflict = true;
                    }
                }
                _ => {
                    self.taken.push(color);
                    if self.proposed == Some(color) {
                        conflict = true;
                    }
                }
            }
        }
        let mut out = Vec::new();
        if let Some(p) = self.proposed.take() {
            if !conflict && self.color == UNCOLORED {
                self.color = p;
                // announce the decision so neighbors drop the color
                for &u in &self.neighbors {
                    out.push(AlgoSend {
                        to: u,
                        payload: msg(1, p),
                    });
                }
            }
        }
        // propose, if still uncolored and rounds remain
        if self.color == UNCOLORED && self.round < self.rounds && out.is_empty() {
            let free: Vec<u32> = (0..self.palette)
                .filter(|c| !self.taken.contains(c))
                .collect();
            if !free.is_empty() {
                let p = free[self.rng.gen_range(0..free.len())];
                self.proposed = Some(p);
                for &u in &self.neighbors {
                    out.push(AlgoSend {
                        to: u,
                        payload: msg(0, p),
                    });
                }
            }
        }
        self.round += 1;
        out
    }

    fn output(&self) -> Option<Vec<u8>> {
        Some(self.color.to_le_bytes().to_vec())
    }
}

/// Decodes a node output into its color (`None` if uncolored).
pub fn decode_color(payload: &[u8]) -> Option<u32> {
    let c = u32::from_le_bytes(payload[..4].try_into().expect("color"));
    (c != UNCOLORED).then_some(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_core::{run_alone, DasProblem, Scheduler, UniformScheduler};
    use das_graph::generators;

    fn colors_of(g: &Graph, rounds: u32, seed: u64) -> Vec<Option<u32>> {
        let algo = Coloring::new(0, g, rounds);
        let r = run_alone(g, &algo, seed).unwrap();
        r.outputs
            .iter()
            .map(|o| decode_color(o.as_ref().unwrap()))
            .collect()
    }

    fn is_proper(g: &Graph, colors: &[Option<u32>]) -> bool {
        g.edges().all(|e| {
            let (a, b) = g.endpoints(e);
            match (colors[a.index()], colors[b.index()]) {
                (Some(ca), Some(cb)) => ca != cb,
                _ => true,
            }
        })
    }

    #[test]
    fn coloring_is_always_proper() {
        for seed in 0..5 {
            let g = generators::gnp_connected(30, 0.12, seed);
            let colors = colors_of(&g, 8, seed);
            assert!(is_proper(&g, &colors), "seed {seed}");
        }
    }

    #[test]
    fn enough_rounds_color_almost_everyone() {
        let g = generators::grid(6, 6);
        let colors = colors_of(&g, 20, 3);
        let colored = colors.iter().filter(|c| c.is_some()).count();
        assert!(colored >= 34, "only {colored}/36 colored");
    }

    #[test]
    fn colors_fit_the_palette() {
        let g = generators::gnp_connected(25, 0.15, 7);
        let algo = Coloring::new(0, &g, 12);
        let colors = colors_of(&g, 12, 7);
        for c in colors.into_iter().flatten() {
            assert!(c < algo.palette());
        }
    }

    #[test]
    fn seed_changes_the_coloring() {
        let g = generators::cycle(20);
        assert_ne!(colors_of(&g, 10, 1), colors_of(&g, 10, 2));
    }

    #[test]
    fn colorings_schedule_together_correctly() {
        let g = generators::grid(5, 5);
        let algos: Vec<Box<dyn BlackBoxAlgorithm>> = (0..6)
            .map(|i| Box::new(Coloring::new(i, &g, 8)) as Box<dyn BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 11);
        let outcome = UniformScheduler::default().run(&p).unwrap();
        let rep = das_core::verify::against_references(&p, &outcome).unwrap();
        assert!(rep.all_correct(), "late {}", outcome.stats.late_messages);
    }
}
