//! Convergecast + broadcast on a rooted tree: sum all node values at the
//! root, then tell everyone. A classic low-congestion workload (each tree
//! edge carries exactly two messages) with dilation `2·height + 1`.

use das_core::{Aid, AlgoNode, AlgoSend, BlackBoxAlgorithm};
use das_graph::tree::RootedTree;
use das_graph::{Graph, NodeId};

/// Sum-convergecast on a BFS tree followed by a broadcast of the total.
/// Node values are derived from each node's random tape (so outputs are
/// seed-sensitive); every node outputs the global sum.
#[derive(Clone, Debug)]
pub struct TreeSum {
    aid: Aid,
    height: u32,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    depth: Vec<u32>,
}

impl TreeSum {
    /// Builds the workload on the BFS tree of `g` rooted at `root`.
    ///
    /// # Panics
    /// Panics if `g` is disconnected.
    pub fn new(aid: u64, g: &Graph, root: NodeId) -> Self {
        let tree = RootedTree::bfs(g, root);
        let n = g.node_count();
        TreeSum {
            aid: Aid(aid),
            height: tree.height(),
            parent: (0..n).map(|v| tree.parent(NodeId(v as u32))).collect(),
            children: (0..n)
                .map(|v| tree.children(NodeId(v as u32)).to_vec())
                .collect(),
            depth: (0..n).map(|v| tree.depth(NodeId(v as u32))).collect(),
        }
    }
}

struct TreeSumNode {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    depth: u32,
    height: u32,
    round: u32,
    acc: u64,
    pending_up: usize,
    total: Option<u64>,
}

impl BlackBoxAlgorithm for TreeSum {
    fn aid(&self) -> Aid {
        self.aid
    }

    fn rounds(&self) -> u32 {
        2 * self.height + 2
    }

    fn create_node(&self, v: NodeId, _n: usize, seed: u64) -> Box<dyn AlgoNode> {
        Box::new(TreeSumNode {
            parent: self.parent[v.index()],
            children: self.children[v.index()].clone(),
            depth: self.depth[v.index()],
            height: self.height,
            round: 0,
            acc: das_congest::util::seed_mix(seed, 0x5731) % 1_000_000,
            pending_up: self.children[v.index()].len(),
            total: None,
        })
    }
}

impl AlgoNode for TreeSumNode {
    fn step(&mut self, inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend> {
        for (from, payload) in inbox {
            let val = u64::from_le_bytes(payload[..8].try_into().expect("8-byte value"));
            if self.children.contains(from) {
                self.acc = self.acc.wrapping_add(val);
                self.pending_up -= 1;
            } else {
                // from the parent: the global total
                self.total = Some(val);
            }
        }
        let mut out = Vec::new();
        // upcast: a node at depth d has all child sums by round
        // height - d; send up at exactly that round (deterministic timing)
        let up_round = self.height - self.depth;
        if self.round == up_round {
            debug_assert_eq!(self.pending_up, 0, "child sums must have arrived");
            match self.parent {
                Some(p) => out.push(AlgoSend {
                    to: p,
                    payload: self.acc.to_le_bytes().to_vec(),
                }),
                None => self.total = Some(self.acc), // root
            }
        }
        // broadcast down: the root starts at round height + 1; a node at
        // depth d relays at round height + 1 + d
        if self.round == self.height + 1 + self.depth {
            if let Some(total) = self.total {
                for &c in &self.children {
                    out.push(AlgoSend {
                        to: c,
                        payload: total.to_le_bytes().to_vec(),
                    });
                }
            }
        }
        self.round += 1;
        out
    }

    fn output(&self) -> Option<Vec<u8>> {
        self.total.map(|t| t.to_le_bytes().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_core::{run_alone, DasProblem, PrivateScheduler, Scheduler};
    use das_graph::generators;

    #[test]
    fn everyone_learns_the_same_sum() {
        let g = generators::grid(4, 5);
        let algo = TreeSum::new(0, &g, NodeId(0));
        let r = run_alone(&g, &algo, 8).unwrap();
        let first = r.outputs[0].as_ref().expect("root knows the sum");
        for v in g.nodes() {
            assert_eq!(r.outputs[v.index()].as_ref(), Some(first), "node {v}");
        }
    }

    #[test]
    fn congestion_is_two_per_tree_edge() {
        let g = generators::balanced_tree(15, 2);
        let algo = TreeSum::new(0, &g, NodeId(0));
        let r = run_alone(&g, &algo, 3).unwrap();
        // every edge is a tree edge here: one up + one down message
        for (e, load) in r.pattern.edge_loads().into_iter().enumerate() {
            assert_eq!(load, 2, "edge {e}");
        }
    }

    #[test]
    fn seed_changes_the_sum() {
        let g = generators::path(6);
        let algo = TreeSum::new(0, &g, NodeId(0));
        let a = run_alone(&g, &algo, 1).unwrap();
        let b = run_alone(&g, &algo, 2).unwrap();
        assert_ne!(a.outputs[0], b.outputs[0]);
    }

    #[test]
    fn schedulable_with_private_scheduler() {
        let g = generators::grid(4, 4);
        let algos: Vec<Box<dyn BlackBoxAlgorithm>> = (0..4)
            .map(|i| {
                Box::new(TreeSum::new(i, &g, NodeId((i * 5) as u32))) as Box<dyn BlackBoxAlgorithm>
            })
            .collect();
        let p = DasProblem::new(&g, algos, 13);
        let outcome = PrivateScheduler::default().run(&p).unwrap();
        let rep = das_core::verify::against_references(&p, &outcome).unwrap();
        assert!(rep.all_correct(), "late {}", outcome.stats.late_messages);
    }
}
