//! Packet routing along fixed paths (§1 item III) — the
//! Leighton–Maggs–Rao special case the paper generalizes.
//!
//! A routing instance is a set of (source, destination, path) triples; each
//! packet is one black-box algorithm (a [`das_core::synthetic::RelayChain`]
//! along its path), so the whole instance is a DAS problem with
//! `dilation = max path length` and `congestion = max #paths per edge` —
//! exactly the LMR parameters. Scheduling it with
//! [`das_core::UniformScheduler`] reproduces the classical
//! `O(congestion + dilation · log n)` random-delay result.

use das_core::synthetic::RelayChain;
use das_core::BlackBoxAlgorithm;
use das_graph::{traversal, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A packet-routing instance.
#[derive(Clone, Debug)]
pub struct RoutingInstance {
    /// One path per packet (node sequences, consecutive-adjacent).
    pub paths: Vec<Vec<NodeId>>,
}

impl RoutingInstance {
    /// `k` packets between random distinct source/destination pairs,
    /// routed along shortest paths.
    ///
    /// # Panics
    /// Panics if the graph is disconnected or has fewer than 2 nodes.
    pub fn random_shortest_paths(g: &Graph, k: usize, seed: u64) -> Self {
        assert!(g.node_count() >= 2, "need at least two nodes");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = g.node_count() as u32;
        let paths = (0..k)
            .map(|_| {
                let s = NodeId(rng.gen_range(0..n));
                let t = loop {
                    let t = NodeId(rng.gen_range(0..n));
                    if t != s {
                        break t;
                    }
                };
                traversal::shortest_path(g, s, t).expect("connected graph")
            })
            .collect();
        RoutingInstance { paths }
    }

    /// The LMR parameters of the instance: `(congestion, dilation)` —
    /// max paths through an edge, and max path length.
    pub fn parameters(&self, g: &Graph) -> (u64, u32) {
        let mut load = vec![0u64; g.edge_count()];
        let mut dilation = 0u32;
        for path in &self.paths {
            dilation = dilation.max((path.len().saturating_sub(1)) as u32);
            for w in path.windows(2) {
                let e = g.find_edge(w[0], w[1]).expect("path uses real edges");
                load[e.index()] += 1;
            }
        }
        (load.into_iter().max().unwrap_or(0), dilation)
    }

    /// Turns the instance into schedulable black boxes (one per packet).
    pub fn algorithms(&self, g: &Graph) -> Vec<Box<dyn BlackBoxAlgorithm>> {
        self.paths
            .iter()
            .enumerate()
            .map(|(i, path)| {
                Box::new(RelayChain::along(i as u64, g, path.clone())) as Box<dyn BlackBoxAlgorithm>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_core::{DasProblem, Scheduler, UniformScheduler};
    use das_graph::generators;

    #[test]
    fn random_instance_parameters() {
        let g = generators::grid(6, 6);
        let inst = RoutingInstance::random_shortest_paths(&g, 20, 3);
        assert_eq!(inst.paths.len(), 20);
        let (c, d) = inst.parameters(&g);
        assert!(c >= 1 && d >= 1);
        assert!(d <= 10, "grid shortest paths are at most the diameter");
        // endpoints distinct and paths valid
        for p in &inst.paths {
            assert!(p.len() >= 2);
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }

    #[test]
    fn instance_matches_das_parameters() {
        let g = generators::grid(5, 5);
        let inst = RoutingInstance::random_shortest_paths(&g, 15, 7);
        let (c, d) = inst.parameters(&g);
        let p = DasProblem::new(&g, inst.algorithms(&g), 0);
        let params = p.parameters().unwrap();
        assert_eq!(params.congestion, c);
        assert_eq!(params.dilation, d);
    }

    #[test]
    fn lmr_scheduling_is_correct() {
        let g = generators::grid(6, 6);
        let inst = RoutingInstance::random_shortest_paths(&g, 30, 11);
        let p = DasProblem::new(&g, inst.algorithms(&g), 5);
        let outcome = UniformScheduler::default().run(&p).unwrap();
        let rep = das_core::verify::against_references(&p, &outcome).unwrap();
        assert!(rep.all_correct(), "late {}", outcome.stats.late_messages);
    }

    #[test]
    fn deterministic_instances() {
        let g = generators::cycle(12);
        let a = RoutingInstance::random_shortest_paths(&g, 5, 1);
        let b = RoutingInstance::random_shortest_paths(&g, 5, 1);
        assert_eq!(a.paths, b.paths);
    }
}
