//! Breadth-first search workloads (§1 item II).
//!
//! [`HopBfs`] is a single-source `h`-hop BFS as a schedulable black box —
//! the paper's running example of an algorithm whose communication pattern
//! cannot be known in advance. [`KBfsProtocol`] is a Lenzen–Peleg-style
//! combined protocol that runs `k` BFSs together in `O(k + h)` rounds by
//! pipelining distance announcements smallest-first.

use das_congest::{util, Protocol, ProtocolNode, RoundContext};
use das_core::{Aid, AlgoNode, AlgoSend, BlackBoxAlgorithm};
use das_graph::{Graph, NodeId};
use std::collections::BTreeSet;

/// Single-source `h`-hop BFS: each node outputs `(distance, parent)` if it
/// is within `h` hops of the source.
#[derive(Clone, Debug)]
pub struct HopBfs {
    aid: Aid,
    source: NodeId,
    hops: u32,
    neighbors: Vec<Vec<NodeId>>,
}

impl HopBfs {
    /// Creates the BFS from `source` to depth `hops`.
    pub fn new(aid: u64, g: &Graph, source: NodeId, hops: u32) -> Self {
        assert!(hops > 0, "BFS needs at least one hop");
        HopBfs {
            aid: Aid(aid),
            source,
            hops,
            neighbors: g
                .nodes()
                .map(|v| g.neighbors(v).iter().map(|&(u, _)| u).collect())
                .collect(),
        }
    }
}

struct HopBfsNode {
    neighbors: Vec<NodeId>,
    hops: u32,
    round: u32,
    dist: Option<u32>,
    parent: Option<NodeId>,
    pending: bool,
}

impl BlackBoxAlgorithm for HopBfs {
    fn aid(&self) -> Aid {
        self.aid
    }

    fn rounds(&self) -> u32 {
        self.hops + 1
    }

    fn create_node(&self, v: NodeId, _n: usize, _seed: u64) -> Box<dyn AlgoNode> {
        let is_source = v == self.source;
        Box::new(HopBfsNode {
            neighbors: self.neighbors[v.index()].clone(),
            hops: self.hops,
            round: 0,
            dist: is_source.then_some(0),
            parent: None,
            pending: is_source,
        })
    }
}

impl AlgoNode for HopBfsNode {
    fn step(&mut self, inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend> {
        // deterministic parent choice: smallest-id announcer of the first
        // round that reaches us
        let mut best: Option<NodeId> = None;
        for (from, _payload) in inbox {
            if self.dist.is_none() && best.is_none_or(|b| *from < b) {
                best = Some(*from);
            }
        }
        if let Some(from) = best {
            self.dist = Some(self.round);
            self.parent = Some(from);
            self.pending = true;
        }
        let mut out = Vec::new();
        if self.pending && self.round < self.hops {
            self.pending = false;
            for &u in &self.neighbors {
                out.push(AlgoSend {
                    to: u,
                    payload: (self.dist.expect("pending implies dist") as u64)
                        .to_le_bytes()
                        .to_vec(),
                });
            }
        }
        self.round += 1;
        out
    }

    fn output(&self) -> Option<Vec<u8>> {
        self.dist.map(|d| {
            let mut v = d.to_le_bytes().to_vec();
            v.extend_from_slice(&self.parent.map_or(u32::MAX, |p| p.0).to_le_bytes());
            v
        })
    }
}

/// `k` BFSs from different sources run together: every round, every node
/// announces its best not-yet-announced `(distance, source)` entry,
/// smallest first. The pipelining argument of Lenzen–Peleg gives `O(k + h)`
/// rounds. Each node outputs its distance vector to the `k` sources.
pub struct KBfsProtocol {
    /// The BFS sources.
    pub sources: Vec<NodeId>,
    /// Hop limit.
    pub hops: u32,
}

impl KBfsProtocol {
    /// Creates the combined protocol.
    pub fn new(sources: Vec<NodeId>, hops: u32) -> Self {
        assert!(!sources.is_empty(), "need at least one source");
        KBfsProtocol { sources, hops }
    }
}

struct KBfsNode {
    hops: u32,
    /// best known distance per source index
    dist: Vec<Option<u32>>,
    announced: BTreeSet<usize>,
    quiet: bool,
}

impl Protocol for KBfsProtocol {
    fn create_node(&self, id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
        let dist = self
            .sources
            .iter()
            .map(|&s| (s == id).then_some(0))
            .collect();
        Box::new(KBfsNode {
            hops: self.hops,
            dist,
            announced: BTreeSet::new(),
            quiet: false,
        })
    }
}

impl ProtocolNode for KBfsNode {
    fn round(&mut self, ctx: &mut RoundContext<'_>) {
        for env in ctx.inbox() {
            if let Some((11, words)) = util::decode(&env.payload) {
                let (src, d) = util::unpack2(words[0]);
                let nd = d + 1;
                let slot = &mut self.dist[src as usize];
                if slot.is_none_or(|cur| nd < cur) {
                    *slot = Some(nd);
                    // re-announce improvements
                    self.announced.remove(&(src as usize));
                }
            }
        }
        // announce the smallest (distance, source) not yet announced
        let next = self
            .dist
            .iter()
            .enumerate()
            .filter(|&(i, d)| d.is_some_and(|d| d < self.hops) && !self.announced.contains(&i))
            .min_by_key(|&(i, d)| (d.expect("filtered"), i));
        match next {
            Some((i, d)) => {
                self.announced.insert(i);
                self.quiet = false;
                let msg = util::encode(11, &[util::pack2(i as u32, d.expect("filtered"))]);
                ctx.send_all(msg).expect("BFS announcements fit the model");
            }
            None => self.quiet = true,
        }
    }

    fn is_done(&self) -> bool {
        self.quiet
    }

    fn output(&self) -> Option<Vec<u8>> {
        let words: Vec<u64> = self
            .dist
            .iter()
            .map(|d| d.map_or(u64::MAX, |d| d as u64))
            .collect();
        Some(util::encode(11, &words))
    }
}

/// Decodes a [`KBfsProtocol`] output into per-source distances
/// (`None` = unreached within the hop limit).
pub fn decode_kbfs_output(payload: &[u8]) -> Vec<Option<u32>> {
    let (tag, words) = util::decode(payload).expect("well-formed output");
    assert_eq!(tag, 11);
    words
        .into_iter()
        .map(|w| (w != u64::MAX).then_some(w as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_congest::{Engine, EngineConfig};
    use das_core::{run_alone, DasProblem, Scheduler, UniformScheduler};
    use das_graph::{generators, traversal};

    #[test]
    fn hop_bfs_alone_matches_bfs() {
        let g = generators::gnp_connected(30, 0.1, 4);
        let algo = HopBfs::new(0, &g, NodeId(5), 10);
        let r = run_alone(&g, &algo, 1).unwrap();
        let dist = traversal::bfs_distances(&g, NodeId(5));
        for v in g.nodes() {
            match r.outputs[v.index()].as_ref() {
                Some(out) => {
                    let d = u32::from_le_bytes(out[..4].try_into().unwrap());
                    assert_eq!(Some(d), dist[v.index()], "node {v}");
                    if v != NodeId(5) {
                        let p = u32::from_le_bytes(out[4..8].try_into().unwrap());
                        assert_eq!(dist[p as usize], Some(d - 1), "parent one closer");
                    }
                }
                None => assert!(dist[v.index()].is_none() || dist[v.index()].unwrap() > 10),
            }
        }
    }

    #[test]
    fn scheduled_bfs_bundle_is_correct() {
        let g = generators::grid(5, 5);
        let algos: Vec<Box<dyn BlackBoxAlgorithm>> = (0..6)
            .map(|i| {
                Box::new(HopBfs::new(i, &g, NodeId((i * 4 % 25) as u32), 8))
                    as Box<dyn BlackBoxAlgorithm>
            })
            .collect();
        let p = DasProblem::new(&g, algos, 9);
        let outcome = UniformScheduler::default().run(&p).unwrap();
        let rep = das_core::verify::against_references(&p, &outcome).unwrap();
        assert!(rep.all_correct(), "late {}", outcome.stats.late_messages);
    }

    #[test]
    fn k_bfs_protocol_computes_all_distances_in_k_plus_h() {
        let g = generators::grid(6, 6);
        let sources: Vec<NodeId> = (0..8).map(|i| NodeId(i * 4)).collect();
        let h = 12u32;
        let proto = KBfsProtocol::new(sources.clone(), h);
        let report = Engine::new(&g, EngineConfig::default())
            .run(&proto)
            .unwrap();
        for v in g.nodes() {
            let got = decode_kbfs_output(report.outputs[v.index()].as_ref().unwrap());
            for (i, &s) in sources.iter().enumerate() {
                let want = traversal::bfs_distances(&g, s)[v.index()].filter(|&d| d <= h);
                assert_eq!(got[i], want, "node {v} source {s}");
            }
        }
        assert!(
            report.rounds <= (sources.len() as u64 + h as u64) * 2,
            "rounds {} far above k + h",
            report.rounds
        );
    }
}
