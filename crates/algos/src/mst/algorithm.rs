//! The distributed MST step machine (filter-upcast over a fragment
//! decomposition).

use super::fragments::{capped_boruvka, FragmentDecomposition};
use super::weights::{EdgeWeights, UnionFind};
use das_core::{Aid, AlgoNode, AlgoSend, BlackBoxAlgorithm};
use das_graph::tree::RootedTree;
use das_graph::{Graph, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// A candidate inter-fragment edge in transit: (weight, endpoints,
/// fragment ids). Ordered by weight (weights are unique).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Cand {
    w: u64,
    u: u32,
    v: u32,
    fu: u32,
    fv: u32,
}

fn encode_cand(tag: u8, c: &Cand) -> Vec<u8> {
    das_congest::util::encode(
        tag,
        &[
            c.w,
            das_congest::util::pack2(c.u, c.v),
            das_congest::util::pack2(c.fu, c.fv),
        ],
    )
}

fn decode_cand(words: &[u64]) -> Cand {
    let (u, v) = das_congest::util::unpack2(words[1]);
    let (fu, fv) = das_congest::util::unpack2(words[2]);
    Cand {
        w: words[0],
        u,
        v,
        fu,
        fv,
    }
}

const TAG_UP: u8 = 20;
const TAG_DOWN: u8 = 21;
const TAG_DONE: u8 = 22;

/// The Section 5 MST family: capped-Borůvka fragments (charged as an idle
/// round prefix; see the [module docs](super)) + fully distributed
/// pipelined filter-upcast and downcast on a BFS tree.
///
/// * `diam_cap = 0`: the filter-upcast algorithm
///   (`congestion ≈ dilation ≈ Θ̃(n)`).
/// * `diam_cap ≈ n/L`: the Kutten–Peleg-style trade-off
///   (`congestion ≈ #fragments ≈ L`, `dilation ≈ Θ̃(D + n/L + L)`).
///
/// Every node outputs a digest (XOR + count) of its incident MST edges;
/// the MST is unique because weights are.
#[derive(Clone, Debug)]
pub struct MstAlgorithm {
    aid: Aid,
    decomp: FragmentDecomposition,
    weights: EdgeWeights,
    // BFS tree structure
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
    height: u32,
    // per-node owned inter-fragment candidate edges
    owned: Vec<Vec<Cand>>,
    // per-node incident fragment-tree edge weights (for the output digest)
    incident_tree: Vec<Vec<u64>>,
    t_up: u32,
    t_down: u32,
    n_nodes: usize,
}

impl MstAlgorithm {
    /// Builds the algorithm for one weight instance. `diam_cap` is the
    /// fragment diameter cap (0 = filter-upcast configuration).
    ///
    /// # Panics
    /// Panics if `g` is disconnected.
    pub fn new(aid: u64, g: &Graph, weights: EdgeWeights, diam_cap: u32) -> Self {
        let decomp = capped_boruvka(g, &weights, diam_cap);
        let tree = RootedTree::bfs(g, NodeId(0));
        let n = g.node_count();
        let mut owned: Vec<Vec<Cand>> = vec![Vec::new(); n];
        for e in g.edges() {
            let (a, b) = g.endpoints(e);
            let (fa, fb) = (decomp.fragment[a.index()], decomp.fragment[b.index()]);
            if fa != fb {
                owned[a.index()].push(Cand {
                    w: weights.weight(e),
                    u: a.0,
                    v: b.0,
                    fu: fa,
                    fv: fb,
                });
            }
        }
        let mut incident_tree: Vec<Vec<u64>> = vec![Vec::new(); n];
        for &e in &decomp.tree_edges {
            let (a, b) = g.endpoints(e);
            incident_tree[a.index()].push(weights.weight(e));
            incident_tree[b.index()].push(weights.weight(e));
        }
        let f = decomp.count as u32;
        let h = tree.height();
        let t_up = 2 * f + 2 * h + 8;
        let t_down = f + h + 8;
        MstAlgorithm {
            aid: Aid(aid),
            parent: (0..n).map(|v| tree.parent(NodeId(v as u32))).collect(),
            children: (0..n)
                .map(|v| tree.children(NodeId(v as u32)).to_vec())
                .collect(),
            height: h,
            owned,
            incident_tree,
            t_up,
            t_down,
            decomp,
            weights,
            n_nodes: n,
        }
    }

    /// The fragment decomposition used.
    pub fn decomposition(&self) -> &FragmentDecomposition {
        &self.decomp
    }

    /// The expected output digest of node `v` given the true MST edge set
    /// (for verification).
    pub fn expected_digest(&self, g: &Graph, mst: &[das_graph::EdgeId], v: NodeId) -> Vec<u8> {
        let mut xor = 0u64;
        let mut count = 0u32;
        for &e in mst {
            let (a, b) = g.endpoints(e);
            if a == v || b == v {
                xor ^= self.weights.weight(e);
                count += 1;
            }
        }
        let mut out = xor.to_le_bytes().to_vec();
        out.extend_from_slice(&count.to_le_bytes());
        out
    }
}

struct MstNode {
    me: NodeId,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    charged: u32,
    t_up: u32,
    round: u32,
    total_rounds: u32,
    n_nodes: usize,
    // upcast state
    pending: BTreeSet<Cand>,
    uf: UnionFind,
    child_last: BTreeMap<NodeId, u64>,
    child_done: BTreeSet<NodeId>,
    sent_done: bool,
    // root's chosen fragment-graph MST edges, in emission order
    chosen: Vec<Cand>,
    emit_idx: usize,
    // downcast forwarding queue and incident results
    down_queue: Vec<Cand>,
    down_idx: usize,
    incident_xor: u64,
    incident_count: u32,
}

impl BlackBoxAlgorithm for MstAlgorithm {
    fn aid(&self) -> Aid {
        self.aid
    }

    fn rounds(&self) -> u32 {
        self.decomp.charged_rounds + self.t_up + self.t_down
    }

    fn create_node(&self, v: NodeId, _n: usize, _seed: u64) -> Box<dyn AlgoNode> {
        let mut incident_xor = 0u64;
        let mut incident_count = 0u32;
        for &w in &self.incident_tree[v.index()] {
            incident_xor ^= w;
            incident_count += 1;
        }
        Box::new(MstNode {
            me: v,
            parent: self.parent[v.index()],
            children: self.children[v.index()].clone(),
            charged: self.decomp.charged_rounds,
            t_up: self.t_up,
            round: 0,
            total_rounds: self.rounds(),
            n_nodes: self.n_nodes,
            pending: self.owned[v.index()].iter().copied().collect(),
            uf: UnionFind::new(self.n_nodes),
            child_last: BTreeMap::new(),
            child_done: BTreeSet::new(),
            sent_done: false,
            chosen: Vec::new(),
            emit_idx: 0,
            down_queue: Vec::new(),
            down_idx: 0,
            incident_xor,
            incident_count,
        })
    }
}

impl MstAlgorithm {
    /// Height of the BFS upcast tree.
    pub fn tree_height(&self) -> u32 {
        self.height
    }
}

impl MstNode {
    /// Smallest pending candidate that is safe to process: every child has
    /// either finished or already delivered something at least as heavy.
    fn next_safe(&self) -> Option<Cand> {
        let m = *self.pending.first()?;
        let safe = self.children.iter().all(|c| {
            self.child_done.contains(c) || self.child_last.get(c).is_some_and(|&lw| lw >= m.w)
        });
        safe.then_some(m)
    }
}

impl AlgoNode for MstNode {
    fn step(&mut self, inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend> {
        for (from, payload) in inbox {
            match das_congest::util::decode(payload) {
                Some((TAG_UP, words)) => {
                    let c = decode_cand(&words);
                    self.pending.insert(c);
                    self.child_last.insert(*from, c.w);
                }
                Some((TAG_DONE, _)) => {
                    self.child_done.insert(*from);
                }
                Some((TAG_DOWN, words)) => {
                    let c = decode_cand(&words);
                    self.down_queue.push(c);
                    if c.u == self.me.0 || c.v == self.me.0 {
                        self.incident_xor ^= c.w;
                        self.incident_count += 1;
                    }
                }
                _ => {}
            }
        }

        let mut out = Vec::new();
        let r = self.round;
        let in_upcast = r >= self.charged && r < self.charged + self.t_up;
        let in_downcast = r >= self.charged + self.t_up && r < self.total_rounds;

        if in_upcast {
            // filter candidates (local Kruskal over fragment ids), sending
            // at most one surviving edge up per round; cycles are discarded
            // for free
            while let Some(c) = self.next_safe() {
                self.pending.remove(&c);
                if self.uf.union(c.fu, c.fv) {
                    match self.parent {
                        Some(p) => out.push(AlgoSend {
                            to: p,
                            payload: encode_cand(TAG_UP, &c),
                        }),
                        None => {
                            // root: this edge is in the fragment-graph MST
                            if c.u == self.me.0 || c.v == self.me.0 {
                                self.incident_xor ^= c.w;
                                self.incident_count += 1;
                            }
                            self.chosen.push(c);
                        }
                    }
                    break;
                }
            }
            // completion marker
            if !self.sent_done
                && out.is_empty()
                && self.pending.is_empty()
                && self.children.iter().all(|c| self.child_done.contains(c))
            {
                self.sent_done = true;
                if let Some(p) = self.parent {
                    out.push(AlgoSend {
                        to: p,
                        payload: das_congest::util::encode(TAG_DONE, &[]),
                    });
                }
            }
        } else if in_downcast {
            // root seeds the downcast from its chosen list; everyone else
            // forwards its queue, one edge per round, to all children
            let item = if self.parent.is_none() {
                let c = self.chosen.get(self.emit_idx).copied();
                if c.is_some() {
                    self.emit_idx += 1;
                }
                c
            } else {
                let c = self.down_queue.get(self.down_idx).copied();
                if c.is_some() {
                    self.down_idx += 1;
                }
                c
            };
            if let Some(c) = item {
                for &ch in &self.children {
                    out.push(AlgoSend {
                        to: ch,
                        payload: encode_cand(TAG_DOWN, &c),
                    });
                }
            }
        }

        self.round += 1;
        let _ = self.n_nodes;
        out
    }

    fn output(&self) -> Option<Vec<u8>> {
        let mut out = self.incident_xor.to_le_bytes().to_vec();
        out.extend_from_slice(&self.incident_count.to_le_bytes());
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::weights::kruskal_mst;
    use das_core::run_alone;
    use das_graph::generators;

    fn check_mst(g: &Graph, seed: u64, cap: u32) {
        let w = EdgeWeights::random(g, seed);
        let algo = MstAlgorithm::new(0, g, w, cap);
        let mst = kruskal_mst(g, &EdgeWeights::random(g, seed));
        let r = run_alone(g, &algo, 1).unwrap();
        for v in g.nodes() {
            assert_eq!(
                r.outputs[v.index()].as_deref(),
                Some(&algo.expected_digest(g, &mst, v)[..]),
                "node {v} (seed {seed}, cap {cap})"
            );
        }
    }

    #[test]
    fn filter_upcast_computes_exact_mst() {
        check_mst(&generators::path(10), 1, 0);
        check_mst(&generators::cycle(9), 2, 0);
        check_mst(&generators::grid(5, 5), 3, 0);
        check_mst(&generators::gnp_connected(24, 0.15, 5), 4, 0);
    }

    #[test]
    fn fragment_variants_compute_exact_mst() {
        for cap in [2, 4, 16] {
            check_mst(&generators::grid(5, 5), 7, cap);
            check_mst(&generators::gnp_connected(30, 0.1, 11), 8, cap);
        }
    }

    #[test]
    fn tradeoff_congestion_shrinks_with_cap() {
        let g = generators::gnp_connected(48, 0.1, 2);
        let w = EdgeWeights::random(&g, 3);
        let small_cap = MstAlgorithm::new(0, &g, w.clone(), 1);
        let big_cap = MstAlgorithm::new(0, &g, w, 24);
        let r_small = run_alone(&g, &small_cap, 0).unwrap();
        let r_big = run_alone(&g, &big_cap, 0).unwrap();
        // bigger fragments ⇒ fewer inter-fragment edges cross the BFS tree
        assert!(
            r_big.pattern.edge_loads().iter().max().unwrap()
                < r_small.pattern.edge_loads().iter().max().unwrap(),
            "congestion should drop with larger fragments"
        );
        // …and the charged fragment phase grows with the cap
        assert!(big_cap.decomposition().charged_rounds > small_cap.decomposition().charged_rounds);
    }
}
