//! Minimum spanning trees — the Section 5 case study.
//!
//! The paper uses MST to argue that algorithms should be designed for a
//! **congestion/dilation trade-off**, not just round complexity:
//!
//! * the filter-upcast algorithm has `dilation = Θ̃(n)` and
//!   `congestion = Θ̃(n)`;
//! * a Kutten–Peleg-style algorithm with fragment parameter `L` has
//!   `congestion ≈ L` and `dilation ≈ Θ̃(D + n/L)`;
//! * picking `L = √(n/k)` and scheduling `k` copies solves `k`-shot MST in
//!   `Θ̃(D + √(kn))` rounds — matching the communication-complexity lower
//!   bound.
//!
//! [`MstAlgorithm`] implements the whole family, parameterized by the
//! fragment diameter cap:
//!
//! 1. **Fragment phase** (capped Borůvka): components repeatedly merge
//!    along their minimum-weight outgoing edges — which are always MST
//!    edges (cut property) — until their diameter reaches the cap. *This
//!    phase's communication is charged as an idle round prefix rather than
//!    simulated message-by-message* (the substitution is recorded in
//!    DESIGN.md): its per-edge congestion is `O(log n)` and therefore
//!    negligible for the trade-off, while its round cost — which is what
//!    matters — is charged exactly (`Σ_phases O(diameter)` rounds).
//! 2. **Filter-upcast** (fully distributed): inter-fragment edges are
//!    upcast along a BFS tree in sorted order, each node filtering through
//!    a local Kruskal over fragment ids, so at most `#fragments − 1` edges
//!    cross any tree edge.
//! 3. **Downcast**: the root computes the MST of the fragment graph and
//!    pipelines the chosen edges back down; every node outputs its
//!    incident MST edges.
//!
//! With cap `0` every node is its own fragment and the algorithm *is* the
//! filter-upcast MST; with cap `≈ n/L` it is the trade-off algorithm.

mod algorithm;
mod fragments;
mod weights;

pub use algorithm::MstAlgorithm;
pub use fragments::{capped_boruvka, FragmentDecomposition};
pub use weights::{kruskal_mst, EdgeWeights};
