//! Edge weight functions and the centralized Kruskal reference.

use das_graph::{EdgeId, Graph};

/// A weight function over the edges of a graph. Weights are unique by
/// construction (the low bits encode the edge id), so the MST is unique —
/// which also makes every randomized MST algorithm on these weights a
/// *Bellagio* algorithm in the paper's Appendix A sense.
#[derive(Clone, Debug)]
pub struct EdgeWeights {
    weights: Vec<u64>,
}

impl EdgeWeights {
    /// Pseudo-random unique weights for instance `seed`.
    pub fn random(g: &Graph, seed: u64) -> Self {
        let m = g.edge_count() as u64;
        let weights = g
            .edges()
            .map(|e| {
                let base = das_congest::util::seed_mix(seed, e.index() as u64) % (1 << 40);
                base * m.max(1) + e.index() as u64
            })
            .collect();
        EdgeWeights { weights }
    }

    /// Explicit weights (must be unique for a unique MST).
    pub fn from_vec(weights: Vec<u64>) -> Self {
        EdgeWeights { weights }
    }

    /// The weight of edge `e`.
    pub fn weight(&self, e: EdgeId) -> u64 {
        self.weights[e.index()]
    }

    /// Number of edges covered.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether there are no edges.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// Union-find with path compression.
#[derive(Clone, Debug)]
pub(crate) struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
        }
    }

    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Unions the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra as usize] = rb;
        true
    }
}

/// Centralized Kruskal: the unique MST edge set (sorted by edge id).
///
/// # Panics
/// Panics if the graph is disconnected.
pub fn kruskal_mst(g: &Graph, w: &EdgeWeights) -> Vec<EdgeId> {
    let mut edges: Vec<EdgeId> = g.edges().collect();
    edges.sort_unstable_by_key(|&e| w.weight(e));
    let mut uf = UnionFind::new(g.node_count());
    let mut mst = Vec::with_capacity(g.node_count().saturating_sub(1));
    for e in edges {
        let (a, b) = g.endpoints(e);
        if uf.union(a.0, b.0) {
            mst.push(e);
        }
    }
    assert_eq!(
        mst.len(),
        g.node_count().saturating_sub(1),
        "graph must be connected"
    );
    mst.sort_unstable();
    mst
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_graph::generators;

    #[test]
    fn weights_are_unique_and_deterministic() {
        let g = generators::complete(12);
        let w1 = EdgeWeights::random(&g, 5);
        let w2 = EdgeWeights::random(&g, 5);
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            assert_eq!(w1.weight(e), w2.weight(e));
            assert!(seen.insert(w1.weight(e)), "duplicate weight");
        }
        let w3 = EdgeWeights::random(&g, 6);
        assert!(g.edges().any(|e| w1.weight(e) != w3.weight(e)));
    }

    #[test]
    fn kruskal_on_known_graph() {
        // path weights: MST of a tree is the tree
        let g = generators::path(6);
        let w = EdgeWeights::random(&g, 1);
        let mst = kruskal_mst(&g, &w);
        assert_eq!(mst.len(), 5);
    }

    #[test]
    fn kruskal_picks_light_edges() {
        // triangle with explicit weights: edge 2 (heaviest) excluded
        let mut b = das_graph::GraphBuilder::new(3);
        b.add_edge(0, 1); // e0
        b.add_edge(1, 2); // e1
        b.add_edge(0, 2); // e2
        let g = b.build();
        let w = EdgeWeights::from_vec(vec![1, 2, 3]);
        let mst = kruskal_mst(&g, &w);
        assert_eq!(mst, vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn mst_weight_minimal_against_random_trees() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let g = generators::gnp_connected(12, 0.3, 9);
        let w = EdgeWeights::random(&g, 2);
        let mst = kruskal_mst(&g, &w);
        let mst_weight: u64 = mst.iter().map(|&e| w.weight(e)).sum();
        // any random spanning tree weighs at least as much
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let mut edges: Vec<_> = g.edges().collect();
            edges.shuffle(&mut rng);
            let mut uf = UnionFind::new(g.node_count());
            let mut weight = 0u64;
            let mut count = 0;
            for e in edges {
                let (a, b) = g.endpoints(e);
                if uf.union(a.0, b.0) {
                    weight += w.weight(e);
                    count += 1;
                }
            }
            assert_eq!(count, g.node_count() - 1);
            assert!(weight >= mst_weight);
        }
    }

    #[test]
    #[should_panic]
    fn kruskal_rejects_disconnected() {
        let mut b = das_graph::GraphBuilder::new(4);
        b.add_edge(0, 1);
        let g = b.build();
        let w = EdgeWeights::random(&g, 0);
        kruskal_mst(&g, &w);
    }
}
