//! Capped Borůvka fragment decomposition (the Kutten–Peleg phase 1).

use super::weights::{EdgeWeights, UnionFind};
use das_graph::{EdgeId, Graph, NodeId};

/// The result of the fragment phase: an MST-subforest decomposition with
/// bounded fragment diameters, plus the round cost the distributed phase
/// is charged.
#[derive(Clone, Debug)]
pub struct FragmentDecomposition {
    /// Per-node fragment id (the smallest node id in the fragment).
    pub fragment: Vec<u32>,
    /// The fragment forest edges (always a subset of the MST).
    pub tree_edges: Vec<EdgeId>,
    /// Number of fragments.
    pub count: usize,
    /// Charged rounds: `Σ_phases (2·max fragment diameter + 2)`, the cost
    /// of one convergecast/broadcast sweep per Borůvka phase.
    pub charged_rounds: u32,
    /// Maximum fragment (strong) diameter in the fragment forest.
    pub max_diameter: u32,
}

/// Runs Borůvka merging, freezing every component whose fragment-forest
/// diameter reaches `diam_cap`. Chosen edges are minimum-weight outgoing
/// edges, hence MST edges (cut property with unique weights), so the
/// decomposition is an MST subforest.
///
/// With `diam_cap == 0` no merging happens: every node is its own
/// fragment (the filter-upcast configuration).
pub fn capped_boruvka(g: &Graph, w: &EdgeWeights, diam_cap: u32) -> FragmentDecomposition {
    let n = g.node_count();
    let mut uf = UnionFind::new(n);
    let mut tree_edges: Vec<EdgeId> = Vec::new();
    // per component root: (diameter estimate, frozen)
    let mut diam: Vec<u32> = vec![0; n];
    let mut frozen: Vec<bool> = vec![diam_cap == 0; n];
    let mut charged_rounds = 0u32;
    let max_phases = (n.max(2) as f64).log2().ceil() as usize + 1;

    for _phase in 0..max_phases {
        if diam_cap == 0 {
            break;
        }
        // charge one convergecast + broadcast sweep over current fragments
        let cur_max = (0..n as u32)
            .map(|v| diam[uf.find(v) as usize])
            .max()
            .unwrap_or(0);
        charged_rounds += 2 * cur_max + 2;

        // each active component picks its minimum outgoing edge
        let mut best: std::collections::HashMap<u32, (u64, EdgeId)> =
            std::collections::HashMap::new();
        for e in g.edges() {
            let (a, b) = g.endpoints(e);
            let (ra, rb) = (uf.find(a.0), uf.find(b.0));
            if ra == rb {
                continue;
            }
            for r in [ra, rb] {
                if frozen[r as usize] {
                    continue;
                }
                let entry = best.entry(r).or_insert((u64::MAX, e));
                if w.weight(e) < entry.0 {
                    *entry = (w.weight(e), e);
                }
            }
        }
        if best.is_empty() {
            break;
        }
        // merge along all chosen edges (chains are allowed; diameters are
        // tracked pessimistically and freezing caps the growth)
        let mut chosen: Vec<EdgeId> = best.values().map(|&(_, e)| e).collect();
        chosen.sort_unstable();
        chosen.dedup();
        let mut merged_any = false;
        for e in chosen {
            let (a, b) = g.endpoints(e);
            let (ra, rb) = (uf.find(a.0), uf.find(b.0));
            if ra == rb {
                continue;
            }
            let new_diam = diam[ra as usize] + diam[rb as usize] + 1;
            let new_frozen = frozen[ra as usize] || frozen[rb as usize] || new_diam >= diam_cap;
            uf.union(ra, rb);
            let root = uf.find(ra);
            diam[root as usize] = new_diam;
            frozen[root as usize] = new_frozen;
            tree_edges.push(e);
            merged_any = true;
        }
        if !merged_any {
            break;
        }
    }

    // canonical fragment ids: the smallest node id in each component
    let mut smallest: Vec<u32> = vec![u32::MAX; n];
    for v in 0..n as u32 {
        let r = uf.find(v) as usize;
        smallest[r] = smallest[r].min(v);
    }
    let fragment: Vec<u32> = (0..n as u32)
        .map(|v| smallest[uf.find(v) as usize])
        .collect();
    let mut roots: Vec<u32> = fragment.clone();
    roots.sort_unstable();
    roots.dedup();
    tree_edges.sort_unstable();

    // measured max fragment diameter (BFS inside the fragment forest)
    let max_diameter = measure_max_diameter(g, &fragment, &tree_edges);

    FragmentDecomposition {
        fragment,
        tree_edges,
        count: roots.len(),
        charged_rounds,
        max_diameter,
    }
}

fn measure_max_diameter(g: &Graph, fragment: &[u32], tree_edges: &[EdgeId]) -> u32 {
    use std::collections::VecDeque;
    let n = g.node_count();
    let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for &e in tree_edges {
        let (a, b) = g.endpoints(e);
        adj[a.index()].push(b);
        adj[b.index()].push(a);
    }
    let mut max_d = 0u32;
    // double sweep per fragment root
    let mut roots: Vec<usize> = (0..n).filter(|&v| fragment[v] == v as u32).collect();
    roots.dedup();
    let bfs = |start: usize, adj: &Vec<Vec<NodeId>>| -> (usize, u32) {
        let mut dist = vec![u32::MAX; n];
        dist[start] = 0;
        let mut q = VecDeque::from([start]);
        let mut far = (start, 0);
        while let Some(v) = q.pop_front() {
            for &u in &adj[v] {
                if dist[u.index()] == u32::MAX {
                    dist[u.index()] = dist[v] + 1;
                    if dist[u.index()] > far.1 {
                        far = (u.index(), dist[u.index()]);
                    }
                    q.push_back(u.index());
                }
            }
        }
        far
    };
    for r in roots {
        let (far, _) = bfs(r, &adj);
        let (_, d) = bfs(far, &adj);
        max_d = max_d.max(d);
    }
    max_d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mst::weights::kruskal_mst;
    use das_graph::generators;

    #[test]
    fn cap_zero_gives_singletons() {
        let g = generators::grid(4, 4);
        let w = EdgeWeights::random(&g, 1);
        let d = capped_boruvka(&g, &w, 0);
        assert_eq!(d.count, 16);
        assert!(d.tree_edges.is_empty());
        assert_eq!(d.charged_rounds, 0);
        assert_eq!(d.max_diameter, 0);
    }

    #[test]
    fn fragments_are_mst_subforest() {
        for seed in 0..5 {
            let g = generators::gnp_connected(30, 0.12, seed);
            let w = EdgeWeights::random(&g, seed + 50);
            let mst: std::collections::HashSet<_> = kruskal_mst(&g, &w).into_iter().collect();
            for cap in [1, 3, 8, 100] {
                let d = capped_boruvka(&g, &w, cap);
                for e in &d.tree_edges {
                    assert!(mst.contains(e), "fragment edge {e} not in MST (cap {cap})");
                }
                // fragment ids consistent with tree edges
                for &e in &d.tree_edges {
                    let (a, b) = g.endpoints(e);
                    assert_eq!(d.fragment[a.index()], d.fragment[b.index()]);
                }
            }
        }
    }

    #[test]
    fn huge_cap_yields_single_fragment() {
        let g = generators::gnp_connected(25, 0.15, 3);
        let w = EdgeWeights::random(&g, 4);
        let d = capped_boruvka(&g, &w, 1000);
        assert_eq!(d.count, 1);
        assert_eq!(d.tree_edges.len(), 24);
        // a single fragment spanning everything IS the MST
        assert_eq!(d.tree_edges, kruskal_mst(&g, &w));
    }

    #[test]
    fn diameter_cap_respected_up_to_merge_slack() {
        let g = generators::grid(8, 8);
        let w = EdgeWeights::random(&g, 7);
        for cap in [2u32, 4, 8] {
            let d = capped_boruvka(&g, &w, cap);
            // a merge may overshoot before freezing: diameters stay within
            // a small multiple of the cap
            assert!(
                d.max_diameter <= 3 * cap + 2,
                "cap {cap}: diameter {}",
                d.max_diameter
            );
            assert!(d.count < 64, "cap {cap} should merge something");
        }
    }

    #[test]
    fn bigger_cap_fewer_fragments() {
        let g = generators::gnp_connected(60, 0.06, 2);
        let w = EdgeWeights::random(&g, 9);
        let c1 = capped_boruvka(&g, &w, 2).count;
        let c2 = capped_boruvka(&g, &w, 6).count;
        let c3 = capped_boruvka(&g, &w, 20).count;
        assert!(c1 >= c2 && c2 >= c3, "{c1} >= {c2} >= {c3}");
        assert!(c3 < c1);
    }

    #[test]
    fn charged_rounds_scale_with_cap() {
        let g = generators::grid(10, 10);
        let w = EdgeWeights::random(&g, 3);
        let small = capped_boruvka(&g, &w, 2).charged_rounds;
        let large = capped_boruvka(&g, &w, 40).charged_rounds;
        assert!(small < large, "{small} < {large}");
    }
}
