//! Leader election by min-id flooding — a classic low-dilation,
//! low-congestion workload (every edge carries at most `O(1)` improving
//! announcements on most graphs), available both as a standalone CONGEST
//! protocol and as a schedulable black box with a fixed round budget.

use das_congest::{util, Protocol, ProtocolNode, RoundContext};
use das_core::{Aid, AlgoNode, AlgoSend, BlackBoxAlgorithm};
use das_graph::{Graph, NodeId};

/// Schedulable leader election: flood the minimum id for a fixed number
/// of rounds (enough rounds = the graph diameter ⇒ everyone agrees on
/// node 0... unless ids are randomized by `rank_seed`, which makes the
/// leader input-dependent). Each node outputs the best (rank, id) pair it
/// has seen.
#[derive(Clone, Debug)]
pub struct LeaderElection {
    aid: Aid,
    rounds: u32,
    rank_seed: u64,
    neighbors: Vec<Vec<NodeId>>,
}

impl LeaderElection {
    /// Creates the election with the given round budget (≥ diameter for a
    /// global leader). Ranks are pseudo-random in `rank_seed` so different
    /// instances elect different leaders.
    pub fn new(aid: u64, g: &Graph, rounds: u32, rank_seed: u64) -> Self {
        assert!(rounds > 0, "need at least one round");
        LeaderElection {
            aid: Aid(aid),
            rounds,
            rank_seed,
            neighbors: g
                .nodes()
                .map(|v| g.neighbors(v).iter().map(|&(u, _)| u).collect())
                .collect(),
        }
    }

    /// The rank of node `v` under this instance's seed.
    pub fn rank(&self, v: NodeId) -> u64 {
        util::seed_mix(self.rank_seed, v.0 as u64)
    }
}

struct LeaderNode {
    neighbors: Vec<NodeId>,
    rounds: u32,
    round: u32,
    best: (u64, u32),
    changed: bool,
}

impl BlackBoxAlgorithm for LeaderElection {
    fn aid(&self) -> Aid {
        self.aid
    }

    fn rounds(&self) -> u32 {
        self.rounds
    }

    fn create_node(&self, v: NodeId, _n: usize, _seed: u64) -> Box<dyn AlgoNode> {
        Box::new(LeaderNode {
            neighbors: self.neighbors[v.index()].clone(),
            rounds: self.rounds,
            round: 0,
            best: (self.rank(v), v.0),
            changed: true,
        })
    }
}

impl AlgoNode for LeaderNode {
    fn step(&mut self, inbox: &[(NodeId, Vec<u8>)]) -> Vec<AlgoSend> {
        for (_, payload) in inbox {
            let rank = u64::from_le_bytes(payload[..8].try_into().expect("rank"));
            let id = u32::from_le_bytes(payload[8..12].try_into().expect("id"));
            if (rank, id) < self.best {
                self.best = (rank, id);
                self.changed = true;
            }
        }
        let mut out = Vec::new();
        if self.changed && self.round < self.rounds {
            self.changed = false;
            let mut payload = self.best.0.to_le_bytes().to_vec();
            payload.extend_from_slice(&self.best.1.to_le_bytes());
            for &u in &self.neighbors {
                out.push(AlgoSend {
                    to: u,
                    payload: payload.clone(),
                });
            }
        }
        self.round += 1;
        out
    }

    fn output(&self) -> Option<Vec<u8>> {
        let mut v = self.best.0.to_le_bytes().to_vec();
        v.extend_from_slice(&self.best.1.to_le_bytes());
        Some(v)
    }
}

/// Standalone min-id flood protocol with self-termination (for round
/// measurements: converges in `diameter + O(1)` rounds).
pub struct MinIdProtocol;

struct MinIdNode {
    best: u32,
    changed: bool,
    quiet: bool,
}

impl Protocol for MinIdProtocol {
    fn create_node(&self, id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
        Box::new(MinIdNode {
            best: id.0,
            changed: true,
            quiet: false,
        })
    }
}

impl ProtocolNode for MinIdNode {
    fn round(&mut self, ctx: &mut RoundContext<'_>) {
        for env in ctx.inbox() {
            let v = u32::from_le_bytes(env.payload[..4].try_into().expect("id"));
            if v < self.best {
                self.best = v;
                self.changed = true;
            }
        }
        if self.changed {
            self.changed = false;
            self.quiet = false;
            ctx.send_all(self.best.to_le_bytes().to_vec())
                .expect("min-id flood fits the model");
        } else {
            self.quiet = true;
        }
    }

    fn is_done(&self) -> bool {
        self.quiet
    }

    fn output(&self) -> Option<Vec<u8>> {
        Some(self.best.to_le_bytes().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_congest::{Engine, EngineConfig};
    use das_core::{run_alone, DasProblem, Scheduler, UniformScheduler};
    use das_graph::{generators, traversal};

    #[test]
    fn everyone_elects_the_min_rank_node() {
        let g = generators::grid(5, 5);
        let diam = traversal::diameter(&g).unwrap();
        let algo = LeaderElection::new(0, &g, diam + 1, 7);
        let r = run_alone(&g, &algo, 1).unwrap();
        let leader = g.nodes().min_by_key(|&v| algo.rank(v)).unwrap();
        for v in g.nodes() {
            let out = r.outputs[v.index()].as_ref().unwrap();
            let id = u32::from_le_bytes(out[8..12].try_into().unwrap());
            assert_eq!(NodeId(id), leader, "node {v}");
        }
    }

    #[test]
    fn different_seeds_different_leaders() {
        let g = generators::cycle(20);
        let a = LeaderElection::new(0, &g, 11, 1);
        let b = LeaderElection::new(1, &g, 11, 2);
        let la = g.nodes().min_by_key(|&v| a.rank(v)).unwrap();
        let lb = g.nodes().min_by_key(|&v| b.rank(v)).unwrap();
        // 1/20 chance of collision per pair; these seeds differ
        assert_ne!(la, lb);
    }

    #[test]
    fn short_budget_elects_local_leaders() {
        let g = generators::path(20);
        let algo = LeaderElection::new(0, &g, 2, 3);
        let r = run_alone(&g, &algo, 1).unwrap();
        // node 0 and node 19 can only see 2 hops; their answers may differ
        let outs: std::collections::HashSet<_> =
            r.outputs.iter().map(|o| o.clone().unwrap()).collect();
        assert!(
            outs.len() > 1,
            "2 rounds cannot reach consensus on a 20-path"
        );
    }

    #[test]
    fn protocol_converges_in_diameter_plus_constant() {
        let g = generators::gnp_connected(60, 0.06, 11);
        let diam = traversal::diameter(&g).unwrap() as u64;
        let rep = Engine::new(&g, EngineConfig::default())
            .run(&MinIdProtocol)
            .unwrap();
        for out in &rep.outputs {
            assert_eq!(out.as_deref(), Some(&0u32.to_le_bytes()[..]));
        }
        assert!(
            rep.rounds <= diam + 3,
            "{} vs diameter {}",
            rep.rounds,
            diam
        );
    }

    #[test]
    fn elections_schedule_together() {
        let g = generators::grid(5, 5);
        let algos: Vec<Box<dyn BlackBoxAlgorithm>> = (0..8)
            .map(|i| Box::new(LeaderElection::new(i, &g, 9, 100 + i)) as Box<dyn BlackBoxAlgorithm>)
            .collect();
        let p = DasProblem::new(&g, algos, 5);
        let outcome = UniformScheduler::default().run(&p).unwrap();
        let rep = das_core::verify::against_references(&p, &outcome).unwrap();
        assert!(rep.all_correct(), "late {}", outcome.stats.late_messages);
    }
}
