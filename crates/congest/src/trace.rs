//! Execution traces: human-readable summaries of a recording, for
//! debugging protocols and eyeballing load shapes.

use crate::recorder::Recording;
use std::fmt::Write as _;

/// Summary statistics of a run derived from its [`Recording`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// Messages per round.
    pub per_round: Vec<u64>,
    /// The busiest round (index, message count), if any message was sent.
    pub peak: Option<(usize, u64)>,
    /// Edges ranked by total load, heaviest first: `(edge index, load)`.
    pub heaviest_edges: Vec<(usize, u64)>,
}

impl TraceSummary {
    /// Builds the summary, keeping the `top` heaviest edges.
    pub fn new(rec: &Recording, top: usize) -> Self {
        let per_round: Vec<u64> = rec
            .round_records()
            .iter()
            .map(|r| r.arcs.len() as u64)
            .collect();
        let peak = per_round
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (i, c));
        let mut loads: Vec<(usize, u64)> = rec
            .edge_loads()
            .into_iter()
            .enumerate()
            .filter(|&(_, l)| l > 0)
            .collect();
        loads.sort_by_key(|&(e, l)| (std::cmp::Reverse(l), e));
        loads.truncate(top);
        TraceSummary {
            per_round,
            peak,
            heaviest_edges: loads,
        }
    }

    /// Renders a one-line unicode sparkline of per-round message counts.
    pub fn sparkline(&self) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.per_round.iter().copied().max().unwrap_or(0).max(1);
        self.per_round
            .iter()
            .map(|&c| BARS[((c * 7) / max) as usize])
            .collect()
    }

    /// Renders a multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total: u64 = self.per_round.iter().sum();
        let _ = writeln!(
            out,
            "{} rounds, {} messages  {}",
            self.per_round.len(),
            total,
            self.sparkline()
        );
        if let Some((r, c)) = self.peak {
            let _ = writeln!(out, "peak: {c} messages in round {r}");
        }
        for &(e, l) in &self.heaviest_edges {
            let _ = writeln!(out, "  edge e{e}: {l} messages");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RoundRecord;
    use das_graph::{Arc, Direction, EdgeId};

    fn arc(e: u32) -> Arc {
        Arc::new(EdgeId(e), Direction::Forward)
    }

    fn sample() -> Recording {
        Recording::new(
            3,
            vec![
                RoundRecord {
                    arcs: vec![arc(0), arc(1)],
                },
                RoundRecord { arcs: vec![arc(0)] },
                RoundRecord {
                    arcs: vec![arc(0), arc(1), arc(2)],
                },
            ],
        )
    }

    #[test]
    fn summary_counts() {
        let s = TraceSummary::new(&sample(), 2);
        assert_eq!(s.per_round, vec![2, 1, 3]);
        assert_eq!(s.peak, Some((2, 3)));
        assert_eq!(s.heaviest_edges, vec![(0, 3), (1, 2)]);
    }

    #[test]
    fn sparkline_shape() {
        let s = TraceSummary::new(&sample(), 1);
        let spark = s.sparkline();
        assert_eq!(spark.chars().count(), 3);
        // last round is the max bar
        assert_eq!(spark.chars().last(), Some('█'));
    }

    #[test]
    fn render_mentions_everything() {
        let s = TraceSummary::new(&sample(), 3);
        let r = s.render();
        assert!(r.contains("3 rounds, 6 messages"));
        assert!(r.contains("peak: 3 messages in round 2"));
        assert!(r.contains("edge e0: 3"));
    }

    #[test]
    fn empty_recording() {
        let s = TraceSummary::new(&Recording::new(1, vec![]), 5);
        assert!(s.peak.is_none());
        assert!(s.heaviest_edges.is_empty());
        assert_eq!(s.sparkline(), "");
    }
}
