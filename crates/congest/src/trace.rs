//! Execution traces: human-readable summaries of a recording, for
//! debugging protocols and eyeballing load shapes.
//!
//! [`TraceSummary`] is a thin view over [`das_obs::LoadProfile`]: the
//! recording's per-round and per-edge counts are folded into a profile
//! and the peak/top-K/sparkline logic lives in `das-obs`, shared with the
//! scheduler-level hot-spot reports.

use crate::recorder::Recording;
use das_obs::LoadProfile;
use std::fmt::Write as _;

/// Summary statistics of a run derived from its [`Recording`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// Messages per round.
    pub per_round: Vec<u64>,
    /// The busiest round (index, message count), if any message was sent.
    /// Ties resolve to the earliest such round; an all-zero recording (or
    /// an empty one) has no peak.
    pub peak: Option<(usize, u64)>,
    /// Edges ranked by total load, heaviest first: `(edge index, load)`.
    /// Unloaded edges are never listed, so this can be shorter than `top`.
    pub heaviest_edges: Vec<(usize, u64)>,
}

impl TraceSummary {
    /// Builds the summary, keeping the `top` heaviest edges (`top = 0`
    /// keeps none).
    pub fn new(rec: &Recording, top: usize) -> Self {
        let per_round: Vec<u64> = rec
            .round_records()
            .iter()
            .map(|r| r.arcs.len() as u64)
            .collect();
        let profile = LoadProfile::from_parts(per_round, rec.edge_loads());
        Self::from_profile(&profile, top)
    }

    /// Builds the summary from an already-assembled load profile.
    pub fn from_profile(profile: &LoadProfile, top: usize) -> Self {
        TraceSummary {
            per_round: profile.per_round.clone(),
            peak: profile.peak_round(),
            heaviest_edges: profile.top_edges(top),
        }
    }

    /// Renders a one-line unicode sparkline of per-round message counts.
    pub fn sparkline(&self) -> String {
        das_obs::sparkline(&self.per_round)
    }

    /// Renders a multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total: u64 = self.per_round.iter().sum();
        let _ = writeln!(
            out,
            "{} rounds, {} messages  {}",
            self.per_round.len(),
            total,
            self.sparkline()
        );
        if let Some((r, c)) = self.peak {
            let _ = writeln!(out, "peak: {c} messages in round {r}");
        }
        for &(e, l) in &self.heaviest_edges {
            let _ = writeln!(out, "  edge e{e}: {l} messages");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::RoundRecord;
    use das_graph::{Arc, Direction, EdgeId};

    fn arc(e: u32) -> Arc {
        Arc::new(EdgeId(e), Direction::Forward)
    }

    fn sample() -> Recording {
        Recording::new(
            3,
            vec![
                RoundRecord {
                    arcs: vec![arc(0), arc(1)],
                },
                RoundRecord { arcs: vec![arc(0)] },
                RoundRecord {
                    arcs: vec![arc(0), arc(1), arc(2)],
                },
            ],
        )
    }

    #[test]
    fn summary_counts() {
        let s = TraceSummary::new(&sample(), 2);
        assert_eq!(s.per_round, vec![2, 1, 3]);
        assert_eq!(s.peak, Some((2, 3)));
        assert_eq!(s.heaviest_edges, vec![(0, 3), (1, 2)]);
    }

    #[test]
    fn sparkline_shape() {
        let s = TraceSummary::new(&sample(), 1);
        let spark = s.sparkline();
        assert_eq!(spark.chars().count(), 3);
        // last round is the max bar
        assert_eq!(spark.chars().last(), Some('█'));
    }

    #[test]
    fn render_mentions_everything() {
        let s = TraceSummary::new(&sample(), 3);
        let r = s.render();
        assert!(r.contains("3 rounds, 6 messages"));
        assert!(r.contains("peak: 3 messages in round 2"));
        assert!(r.contains("edge e0: 3"));
    }

    #[test]
    fn empty_recording() {
        let s = TraceSummary::new(&Recording::new(1, vec![]), 5);
        assert!(s.peak.is_none());
        assert!(s.heaviest_edges.is_empty());
        assert_eq!(s.sparkline(), "");
    }

    #[test]
    fn all_zero_recording_has_no_peak() {
        // rounds happened but nothing was sent: `peak` must be None, not
        // `Some((_, 0))`, and the render must not claim a peak
        let rec = Recording::new(
            2,
            vec![RoundRecord { arcs: vec![] }, RoundRecord { arcs: vec![] }],
        );
        let s = TraceSummary::new(&rec, 5);
        assert_eq!(s.per_round, vec![0, 0]);
        assert_eq!(s.peak, None);
        assert!(s.heaviest_edges.is_empty());
        assert!(!s.render().contains("peak:"));
    }

    #[test]
    fn top_zero_keeps_no_edges() {
        let s = TraceSummary::new(&sample(), 0);
        assert!(s.heaviest_edges.is_empty());
        // the rest of the summary is unaffected
        assert_eq!(s.peak, Some((2, 3)));
    }

    #[test]
    fn peak_tie_resolves_to_earliest_round() {
        let rec = Recording::new(
            2,
            vec![
                RoundRecord {
                    arcs: vec![arc(0), arc(1)],
                },
                RoundRecord {
                    arcs: vec![arc(0), arc(1)],
                },
            ],
        );
        let s = TraceSummary::new(&rec, 5);
        assert_eq!(s.peak, Some((0, 2)));
    }
}
