//! Error type for model violations and run failures.

use das_graph::NodeId;
use std::error::Error;
use std::fmt;

/// Errors raised by the CONGEST engine when a protocol violates the model or
/// a run fails to terminate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CongestError {
    /// A node tried to send to a non-neighbor.
    NotNeighbor {
        /// The sending node.
        from: NodeId,
        /// The intended (non-adjacent) recipient.
        to: NodeId,
    },
    /// A message exceeded the per-message size limit.
    MessageTooLarge {
        /// The sending node.
        from: NodeId,
        /// The intended recipient.
        to: NodeId,
        /// Size of the offending payload in bytes.
        size: usize,
        /// The configured limit in bytes.
        limit: usize,
    },
    /// A node tried to send two messages to the same neighbor in one round.
    DuplicateSend {
        /// The sending node.
        from: NodeId,
        /// The recipient that would have received two messages.
        to: NodeId,
        /// The round in which it happened.
        round: u64,
    },
    /// The protocol did not terminate within the configured round limit.
    RoundLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::NotNeighbor { from, to } => {
                write!(f, "node {from} tried to send to non-neighbor {to}")
            }
            CongestError::MessageTooLarge {
                from,
                to,
                size,
                limit,
            } => write!(
                f,
                "message from {from} to {to} is {size} bytes, over the {limit}-byte limit"
            ),
            CongestError::DuplicateSend { from, to, round } => {
                write!(f, "node {from} sent two messages to {to} in round {round}")
            }
            CongestError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not terminate within {limit} rounds")
            }
        }
    }
}

impl Error for CongestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CongestError::NotNeighbor {
            from: NodeId(1),
            to: NodeId(2),
        };
        assert!(e.to_string().contains("non-neighbor"));
        let e = CongestError::MessageTooLarge {
            from: NodeId(0),
            to: NodeId(1),
            size: 100,
            limit: 40,
        };
        assert!(e.to_string().contains("100 bytes"));
        let e = CongestError::RoundLimitExceeded { limit: 5 };
        assert!(e.to_string().contains('5'));
    }
}
