//! The protocol traits: how distributed algorithms plug into the engine.

use crate::ctx::RoundContext;
use das_graph::NodeId;

/// A distributed protocol: a factory that builds the per-node state machine.
///
/// The factory is handed only what a CONGEST node is classically assumed to
/// know at start-up: its own id, the network size `n`, and its own degree.
/// Everything else must be learned through messages.
///
/// Factories are `Send + Sync` and the machines they build are `Send`, so
/// a trial harness can drive independent runs from worker threads.
pub trait Protocol: Send + Sync {
    /// Creates the state machine for node `id`.
    fn create_node(&self, id: NodeId, n: usize, degree: usize) -> Box<dyn ProtocolNode>;

    /// Optional hard cap on rounds after which the engine gives up
    /// (returning [`crate::CongestError::RoundLimitExceeded`]). `None` uses
    /// the engine default.
    fn round_limit(&self) -> Option<u64> {
        None
    }
}

/// Per-node protocol state machine.
///
/// The engine calls [`ProtocolNode::round`] once per round on every node, in
/// node-id order. Messages sent in round `r` are delivered in the inbox at
/// round `r + 1`.
pub trait ProtocolNode: Send {
    /// Executes one round: read `ctx.inbox()`, update state, send messages.
    fn round(&mut self, ctx: &mut RoundContext<'_>);

    /// Whether this node has terminated. The engine stops once every node is
    /// done *and* no messages are in flight.
    fn is_done(&self) -> bool {
        false
    }

    /// The node's final output, if any.
    fn output(&self) -> Option<Vec<u8>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Silent;
    impl ProtocolNode for Silent {
        fn round(&mut self, _ctx: &mut RoundContext<'_>) {}
    }

    #[test]
    fn default_done_and_output() {
        let s = Silent;
        assert!(!s.is_done());
        assert!(s.output().is_none());
    }

    struct Factory;
    impl Protocol for Factory {
        fn create_node(&self, _id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
            Box::new(Silent)
        }
    }

    #[test]
    fn default_round_limit_is_none() {
        assert_eq!(Factory.round_limit(), None);
    }
}
