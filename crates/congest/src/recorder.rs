//! Recording of communication patterns during a run.

use das_graph::Arc;
use serde::{Deserialize, Serialize};

/// The messages sent in one round, as directed arcs.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// One entry per message: the arc it traversed.
    pub arcs: Vec<Arc>,
}

/// The full communication footprint of a run: which arcs carried messages in
/// which rounds. This is exactly the paper's *communication pattern* (§2),
/// viewed as a subgraph of the time-expanded graph `G × [T]`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recording {
    edge_count: usize,
    rounds: Vec<RoundRecord>,
}

impl Recording {
    /// Creates a recording over a graph with `edge_count` edges.
    pub fn new(edge_count: usize, rounds: Vec<RoundRecord>) -> Self {
        Recording { edge_count, rounds }
    }

    /// Number of recorded rounds.
    pub fn rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Number of edges of the underlying graph.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The per-round records.
    pub fn round_records(&self) -> &[RoundRecord] {
        &self.rounds
    }

    /// Total messages across all rounds.
    pub fn message_count(&self) -> u64 {
        self.rounds.iter().map(|r| r.arcs.len() as u64).sum()
    }

    /// Per-edge message totals (both directions summed): the paper's
    /// `congestion(e)` contribution of this one algorithm, i.e. `c_i(e)`.
    pub fn edge_loads(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.edge_count];
        for r in &self.rounds {
            for a in &r.arcs {
                loads[a.edge.index()] += 1;
            }
        }
        loads
    }

    /// The maximum per-edge load, i.e. the congestion this single recording
    /// induces.
    pub fn max_edge_load(&self) -> u64 {
        self.edge_loads().into_iter().max().unwrap_or(0)
    }

    /// Index of the last round in which any message was sent, plus one;
    /// this is the *dilation* contribution (the effective running time).
    pub fn active_rounds(&self) -> usize {
        self.rounds
            .iter()
            .rposition(|r| !r.arcs.is_empty())
            .map_or(0, |i| i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_graph::{Direction, EdgeId};

    fn arc(e: u32, fwd: bool) -> Arc {
        Arc::new(
            EdgeId(e),
            if fwd {
                Direction::Forward
            } else {
                Direction::Backward
            },
        )
    }

    #[test]
    fn loads_sum_both_directions() {
        let rec = Recording::new(
            2,
            vec![
                RoundRecord {
                    arcs: vec![arc(0, true), arc(0, false)],
                },
                RoundRecord {
                    arcs: vec![arc(1, true)],
                },
            ],
        );
        assert_eq!(rec.edge_loads(), vec![2, 1]);
        assert_eq!(rec.max_edge_load(), 2);
        assert_eq!(rec.message_count(), 3);
        assert_eq!(rec.rounds(), 2);
        assert_eq!(rec.active_rounds(), 2);
    }

    #[test]
    fn active_rounds_ignores_trailing_silence() {
        let rec = Recording::new(
            1,
            vec![
                RoundRecord {
                    arcs: vec![arc(0, true)],
                },
                RoundRecord::default(),
                RoundRecord::default(),
            ],
        );
        assert_eq!(rec.rounds(), 3);
        assert_eq!(rec.active_rounds(), 1);
    }

    #[test]
    fn empty_recording() {
        let rec = Recording::new(3, vec![]);
        assert_eq!(rec.max_edge_load(), 0);
        assert_eq!(rec.active_rounds(), 0);
        assert_eq!(rec.edge_loads(), vec![0, 0, 0]);
    }
}
