//! The lockstep round executor.

use crate::ctx::{Outgoing, RoundContext};
use crate::error::CongestError;
use crate::message::Envelope;
use crate::node::Protocol;
use crate::recorder::{Recording, RoundRecord};
use das_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Per-message size limit in bytes. The CONGEST model allows
    /// `O(log n)` bits; the default of 40 bytes corresponds to a handful of
    /// `Θ(log n)`-bit words, enough for a tagged tuple of ids/values.
    pub message_bytes: usize,
    /// Abort with [`CongestError::RoundLimitExceeded`] if the protocol has
    /// not terminated after this many rounds.
    pub max_rounds: u64,
    /// If set, run exactly this many rounds (ignoring `is_done`), then stop.
    pub fixed_rounds: Option<u64>,
    /// Whether to record the communication pattern (per-round arc lists).
    pub record: bool,
    /// Base seed; node `v`'s private RNG stream is derived from
    /// `(seed, v)` by a splitmix step, so streams are independent.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            message_bytes: 40,
            max_rounds: 1_000_000,
            fixed_rounds: None,
            record: true,
            seed: 0,
        }
    }
}

impl EngineConfig {
    /// Returns the config with the given base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with the given per-message byte limit.
    pub fn with_message_bytes(mut self, bytes: usize) -> Self {
        self.message_bytes = bytes;
        self
    }

    /// Returns the config with the given round cap.
    pub fn with_max_rounds(mut self, rounds: u64) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Returns the config set to run exactly `rounds` rounds.
    pub fn with_fixed_rounds(mut self, rounds: u64) -> Self {
        self.fixed_rounds = Some(rounds);
        self
    }

    /// Returns the config with pattern recording on or off.
    pub fn with_record(mut self, record: bool) -> Self {
        self.record = record;
        self
    }
}

/// Result of a completed run.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// Number of rounds executed.
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Per-node outputs, indexed by node id.
    pub outputs: Vec<Option<Vec<u8>>>,
    /// The recorded communication pattern (empty if recording was off).
    pub recording: Recording,
}

/// The synchronous CONGEST executor. See the [crate docs](crate) for an
/// end-to-end example.
pub struct Engine<'g> {
    graph: &'g Graph,
    config: EngineConfig,
}

impl<'g> Engine<'g> {
    /// Creates an engine for `graph` with the given configuration.
    pub fn new(graph: &'g Graph, config: EngineConfig) -> Self {
        Engine { graph, config }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Runs `protocol` to completion (all nodes done and no messages in
    /// flight), or for exactly [`EngineConfig::fixed_rounds`] if set.
    ///
    /// # Errors
    ///
    /// Returns the first model violation a node commits, or
    /// [`CongestError::RoundLimitExceeded`] if the protocol does not
    /// terminate in time.
    pub fn run(&self, protocol: &dyn Protocol) -> Result<ExecutionReport, CongestError> {
        let n = self.graph.node_count();
        let mut nodes: Vec<_> = (0..n)
            .map(|v| protocol.create_node(NodeId(v as u32), n, self.graph.degree(NodeId(v as u32))))
            .collect();
        let mut rngs: Vec<StdRng> = (0..n)
            .map(|v| {
                StdRng::seed_from_u64(splitmix64(
                    self.config.seed ^ (v as u64).wrapping_mul(0x9E3779B97F4A7C15),
                ))
            })
            .collect();

        let limit = protocol.round_limit().unwrap_or(self.config.max_rounds);
        // Double-buffered inboxes plus per-node scratch, all reused across
        // rounds so the steady state allocates nothing.
        let mut inboxes: Vec<Vec<Envelope>> = vec![Vec::new(); n];
        let mut next_inboxes: Vec<Vec<Envelope>> = vec![Vec::new(); n];
        let mut outbox: Vec<Outgoing> = Vec::new();
        let mut sent_to: Vec<NodeId> = Vec::new();
        let mut rounds_rec: Vec<RoundRecord> = Vec::new();
        let mut messages: u64 = 0;
        let mut round: u64 = 0;

        loop {
            if let Some(t) = self.config.fixed_rounds {
                if round == t {
                    break;
                }
            }
            if round >= limit {
                return Err(CongestError::RoundLimitExceeded { limit });
            }

            let mut record = RoundRecord::default();
            let mut any_sent = false;

            for v in 0..n {
                let me = NodeId(v as u32);
                sent_to.clear();
                let mut ctx = RoundContext {
                    me,
                    n,
                    round,
                    neighbors: self.graph.neighbors(me),
                    inbox: &inboxes[v],
                    rng: &mut rngs[v],
                    message_bytes: self.config.message_bytes,
                    outbox: std::mem::take(&mut outbox),
                    sent_to: std::mem::take(&mut sent_to),
                    violation: None,
                };
                nodes[v].round(&mut ctx);
                if let Some(err) = ctx.violation {
                    return Err(err);
                }
                outbox = std::mem::take(&mut ctx.outbox);
                sent_to = std::mem::take(&mut ctx.sent_to);
                for Outgoing { to, edge, payload } in outbox.drain(..) {
                    any_sent = true;
                    messages += 1;
                    if self.config.record {
                        record.arcs.push(self.graph.arc_from(edge, me));
                    }
                    next_inboxes[to.index()].push(Envelope::new(me, payload));
                }
            }

            if self.config.record {
                rounds_rec.push(record);
            }
            std::mem::swap(&mut inboxes, &mut next_inboxes);
            for ib in &mut next_inboxes {
                ib.clear();
            }
            round += 1;

            if self.config.fixed_rounds.is_none() {
                let all_done = nodes.iter().all(|node| node.is_done());
                if all_done && !any_sent {
                    break;
                }
            }
        }

        let outputs = nodes.iter().map(|node| node.output()).collect();
        Ok(ExecutionReport {
            rounds: round,
            messages,
            outputs,
            recording: Recording::new(self.graph.edge_count(), rounds_rec),
        })
    }
}

/// SplitMix64 step, used to derive independent per-node seeds.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::ProtocolNode;
    use das_graph::generators;
    use rand::Rng;

    /// Flood the minimum id; terminate when quiet for one round.
    struct MinFlood;
    struct MinNode {
        best: u32,
        changed: bool,
        quiet: bool,
    }
    impl Protocol for MinFlood {
        fn create_node(&self, id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
            Box::new(MinNode {
                best: id.0,
                changed: true,
                quiet: false,
            })
        }
    }
    impl ProtocolNode for MinNode {
        fn round(&mut self, ctx: &mut RoundContext<'_>) {
            for env in ctx.inbox() {
                let v = u32::from_le_bytes(env.payload[..4].try_into().unwrap());
                if v < self.best {
                    self.best = v;
                    self.changed = true;
                }
            }
            if self.changed {
                self.changed = false;
                self.quiet = false;
                let m = self.best.to_le_bytes().to_vec();
                ctx.send_all(m).unwrap();
            } else {
                self.quiet = true;
            }
        }
        fn is_done(&self) -> bool {
            self.quiet
        }
        fn output(&self) -> Option<Vec<u8>> {
            Some(self.best.to_le_bytes().to_vec())
        }
    }

    #[test]
    fn min_flood_converges_on_cycle() {
        let g = generators::cycle(12);
        let rep = Engine::new(&g, EngineConfig::default())
            .run(&MinFlood)
            .unwrap();
        for out in &rep.outputs {
            assert_eq!(out.as_deref(), Some(&0u32.to_le_bytes()[..]));
        }
        // diameter is 6; flooding needs ~diameter+2 rounds to go quiet
        assert!(rep.rounds <= 10, "took {} rounds", rep.rounds);
        assert!(rep.messages > 0);
    }

    /// A protocol that violates the model in a chosen way.
    struct Violator(u8);
    struct ViolatorNode(u8);
    impl Protocol for Violator {
        fn create_node(&self, id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
            Box::new(ViolatorNode(if id == NodeId(0) { self.0 } else { 255 }))
        }
    }
    impl ProtocolNode for ViolatorNode {
        fn round(&mut self, ctx: &mut RoundContext<'_>) {
            match self.0 {
                0 => {
                    // send to non-neighbor (node 2 on a path 0-1-2)
                    let _ = ctx.send(NodeId(2), vec![0]);
                }
                1 => {
                    let _ = ctx.send(NodeId(1), vec![0; 1000]);
                }
                2 => {
                    let _ = ctx.send(NodeId(1), vec![0]);
                    let _ = ctx.send(NodeId(1), vec![1]);
                }
                _ => {}
            }
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    fn violations_abort_the_run() {
        let g = generators::path(3);
        let eng = Engine::new(&g, EngineConfig::default());
        assert!(matches!(
            eng.run(&Violator(0)),
            Err(CongestError::NotNeighbor { .. })
        ));
        assert!(matches!(
            eng.run(&Violator(1)),
            Err(CongestError::MessageTooLarge { .. })
        ));
        assert!(matches!(
            eng.run(&Violator(2)),
            Err(CongestError::DuplicateSend { .. })
        ));
    }

    /// Never terminates.
    struct Chatter;
    struct ChatterNode;
    impl Protocol for Chatter {
        fn create_node(&self, _id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
            Box::new(ChatterNode)
        }
    }
    impl ProtocolNode for ChatterNode {
        fn round(&mut self, ctx: &mut RoundContext<'_>) {
            ctx.send_all(vec![7]).unwrap();
        }
    }

    #[test]
    fn round_limit_enforced() {
        let g = generators::path(2);
        let cfg = EngineConfig::default().with_max_rounds(10);
        assert!(matches!(
            Engine::new(&g, cfg).run(&Chatter),
            Err(CongestError::RoundLimitExceeded { limit: 10 })
        ));
    }

    #[test]
    fn fixed_rounds_runs_exactly() {
        let g = generators::path(2);
        let cfg = EngineConfig::default().with_fixed_rounds(5);
        let rep = Engine::new(&g, cfg).run(&Chatter).unwrap();
        assert_eq!(rep.rounds, 5);
        assert_eq!(rep.messages, 2 * 5);
        assert_eq!(rep.recording.rounds(), 5);
    }

    /// Samples one random u64 per round; used to check RNG determinism and
    /// per-node independence.
    struct Sampler;
    struct SamplerNode(u64);
    impl Protocol for Sampler {
        fn create_node(&self, _id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
            Box::new(SamplerNode(0))
        }
    }
    impl ProtocolNode for SamplerNode {
        fn round(&mut self, ctx: &mut RoundContext<'_>) {
            self.0 = ctx.rng().gen();
        }
        fn is_done(&self) -> bool {
            true
        }
        fn output(&self) -> Option<Vec<u8>> {
            Some(self.0.to_le_bytes().to_vec())
        }
    }

    #[test]
    fn rng_is_deterministic_and_private() {
        let g = generators::path(4);
        let r1 = Engine::new(&g, EngineConfig::default().with_seed(42))
            .run(&Sampler)
            .unwrap();
        let r2 = Engine::new(&g, EngineConfig::default().with_seed(42))
            .run(&Sampler)
            .unwrap();
        assert_eq!(r1.outputs, r2.outputs, "same seed, same draws");
        let r3 = Engine::new(&g, EngineConfig::default().with_seed(43))
            .run(&Sampler)
            .unwrap();
        assert_ne!(r1.outputs, r3.outputs, "different seed, different draws");
        // distinct nodes draw differently
        assert_ne!(r1.outputs[0], r1.outputs[1]);
    }

    #[test]
    fn recording_captures_messages() {
        let g = generators::path(3);
        let rep = Engine::new(&g, EngineConfig::default())
            .run(&MinFlood)
            .unwrap();
        let total: usize = rep
            .recording
            .round_records()
            .iter()
            .map(|r| r.arcs.len())
            .sum();
        assert_eq!(total as u64, rep.messages);
    }

    #[test]
    fn record_off_keeps_counts() {
        let g = generators::path(3);
        let rep = Engine::new(&g, EngineConfig::default().with_record(false))
            .run(&MinFlood)
            .unwrap();
        assert_eq!(rep.recording.rounds(), 0);
        assert!(rep.messages > 0);
    }
}
