//! Compact codecs for the word-sized values CONGEST messages carry.
//!
//! Messages in the CONGEST model are `O(log n)` bits, i.e. a constant number
//! of machine words. These helpers pack/unpack small tagged tuples of `u64`
//! words into byte payloads.

use crate::message::Payload;

/// Encodes a tag byte followed by `words` little-endian `u64`s.
///
/// ```
/// use das_congest::util::{encode, decode};
/// let p = encode(3, &[7, 9]);
/// let (tag, words) = decode(&p).unwrap();
/// assert_eq!(tag, 3);
/// assert_eq!(words, vec![7, 9]);
/// ```
pub fn encode(tag: u8, words: &[u64]) -> Payload {
    let mut out = Vec::with_capacity(1 + 8 * words.len());
    out.push(tag);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Decodes a payload produced by [`encode`]. Returns `None` if the payload
/// is empty or its length is not `1 + 8k`.
pub fn decode(payload: &[u8]) -> Option<(u8, Vec<u64>)> {
    if payload.is_empty() || !(payload.len() - 1).is_multiple_of(8) {
        return None;
    }
    let tag = payload[0];
    let words = payload[1..]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect();
    Some((tag, words))
}

/// Reads the tag byte without decoding the words. `None` on empty payloads.
pub fn peek_tag(payload: &[u8]) -> Option<u8> {
    payload.first().copied()
}

/// Mixes two seeds into one, for deriving independent sub-seeds
/// (SplitMix64 of the XOR of `a` with a spread of `b`).
pub fn seed_mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E3779B97F4A7C15);
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Packs two `u32`s into one `u64` word.
pub fn pack2(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// Inverse of [`pack2`].
pub fn unpack2(w: u64) -> (u32, u32) {
    ((w >> 32) as u32, w as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = encode(9, &[1, u64::MAX, 0]);
        assert_eq!(p.len(), 1 + 24);
        let (tag, ws) = decode(&p).unwrap();
        assert_eq!(tag, 9);
        assert_eq!(ws, vec![1, u64::MAX, 0]);
        assert_eq!(peek_tag(&p), Some(9));
    }

    #[test]
    fn decode_rejects_bad_lengths() {
        assert_eq!(decode(&[]), None);
        assert_eq!(decode(&[1, 2, 3]), None);
        assert_eq!(peek_tag(&[]), None);
    }

    #[test]
    fn empty_words() {
        let p = encode(5, &[]);
        assert_eq!(decode(&p), Some((5, vec![])));
    }

    #[test]
    fn pack_unpack() {
        let w = pack2(0xDEADBEEF, 42);
        assert_eq!(unpack2(w), (0xDEADBEEF, 42));
        assert_eq!(unpack2(pack2(u32::MAX, u32::MAX)), (u32::MAX, u32::MAX));
    }
}
