//! The per-round view a protocol node gets of the world.

use crate::error::CongestError;
use crate::message::{Envelope, Payload};
use das_graph::{EdgeId, NodeId};
use rand::rngs::StdRng;

/// A message staged for delivery next round.
#[derive(Clone, Debug)]
pub(crate) struct Outgoing {
    pub to: NodeId,
    pub edge: EdgeId,
    pub payload: Payload,
}

/// Everything a node can see and do during one round.
///
/// Obtained only inside [`crate::ProtocolNode::round`]. Provides the inbox
/// (messages sent to this node in the previous round), the node's local
/// topology knowledge, a private RNG stream, and the `send` operations —
/// which enforce the CONGEST model (neighbor-only, size-limited, one message
/// per neighbor per round).
pub struct RoundContext<'a> {
    pub(crate) me: NodeId,
    pub(crate) n: usize,
    pub(crate) round: u64,
    pub(crate) neighbors: &'a [(NodeId, EdgeId)],
    pub(crate) inbox: &'a [Envelope],
    pub(crate) rng: &'a mut StdRng,
    pub(crate) message_bytes: usize,
    pub(crate) outbox: Vec<Outgoing>,
    pub(crate) sent_to: Vec<NodeId>,
    pub(crate) violation: Option<CongestError>,
}

impl<'a> RoundContext<'a> {
    /// This node's id.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Number of nodes in the network (nodes are assumed to know `n`).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The current round number (starting at 0).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// This node's neighbors and the connecting edge ids.
    #[inline]
    pub fn neighbors(&self) -> &[(NodeId, EdgeId)] {
        self.neighbors
    }

    /// Degree of this node.
    #[inline]
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Messages sent to this node in the previous round.
    #[inline]
    pub fn inbox(&self) -> &[Envelope] {
        self.inbox
    }

    /// This node's private random stream.
    ///
    /// Streams of distinct nodes are independent; there is no shared
    /// randomness anywhere in the engine.
    #[inline]
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The per-message size limit in bytes.
    #[inline]
    pub fn message_bytes(&self) -> usize {
        self.message_bytes
    }

    /// Sends `payload` to neighbor `to`, delivered next round.
    ///
    /// # Errors
    ///
    /// * [`CongestError::NotNeighbor`] if `to` is not adjacent;
    /// * [`CongestError::MessageTooLarge`] if the payload exceeds the limit;
    /// * [`CongestError::DuplicateSend`] if this node already sent to `to`
    ///   this round.
    ///
    /// Any error is also latched so the engine aborts the run even if the
    /// caller ignores the result.
    pub fn send(&mut self, to: NodeId, payload: Payload) -> Result<(), CongestError> {
        // neighbors are sorted by id (a Graph invariant), so binary search
        let edge = match self.neighbors.binary_search_by_key(&to, |&(u, _)| u) {
            Ok(i) => self.neighbors[i].1,
            Err(_) => {
                return self.fail(CongestError::NotNeighbor { from: self.me, to });
            }
        };
        if payload.len() > self.message_bytes {
            let err = CongestError::MessageTooLarge {
                from: self.me,
                to,
                size: payload.len(),
                limit: self.message_bytes,
            };
            return self.fail(err);
        }
        if self.sent_to.contains(&to) {
            let err = CongestError::DuplicateSend {
                from: self.me,
                to,
                round: self.round,
            };
            return self.fail(err);
        }
        self.sent_to.push(to);
        self.outbox.push(Outgoing { to, edge, payload });
        Ok(())
    }

    /// Sends the same payload to every neighbor.
    ///
    /// # Errors
    /// Same conditions as [`RoundContext::send`].
    pub fn send_all(&mut self, payload: Payload) -> Result<(), CongestError> {
        for i in 0..self.neighbors.len() {
            let to = self.neighbors[i].0;
            self.send(to, payload.clone())?;
        }
        Ok(())
    }

    fn fail(&mut self, err: CongestError) -> Result<(), CongestError> {
        if self.violation.is_none() {
            self.violation = Some(err.clone());
        }
        Err(err)
    }
}
