//! # das-congest
//!
//! A synchronous, deterministic simulator for the **CONGEST model** of
//! distributed computing [Peleg 2000]: the network is an undirected graph,
//! computation proceeds in lockstep rounds, and in each round every node may
//! send one `O(log n)`-bit message to each of its neighbors.
//!
//! This crate is the substrate the `dasched` schedulers run on. It enforces
//! the model honestly:
//!
//! * at most **one message per edge per direction per round**;
//! * every message at most [`EngineConfig::message_bytes`] bytes;
//! * nodes only ever talk to graph neighbors;
//! * each node owns a **private** seeded RNG stream (no shared randomness —
//!   exactly the setting of Theorem 1.3 of the paper).
//!
//! Protocols implement [`Protocol`] (a per-node state-machine factory) and
//! are driven by [`Engine::run`], which also records the *communication
//! pattern* (which edges carried messages in which rounds) for congestion and
//! dilation accounting.
//!
//! ```
//! use das_congest::{Engine, EngineConfig, Protocol, ProtocolNode, RoundContext};
//! use das_graph::{generators, NodeId};
//!
//! /// Each node floods the smallest id it has seen (leader election).
//! struct MinIdFlood;
//! struct MinIdNode { best: u32, changed: bool, quiet: bool }
//!
//! impl Protocol for MinIdFlood {
//!     fn create_node(&self, id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
//!         Box::new(MinIdNode { best: id.0, changed: true, quiet: false })
//!     }
//! }
//!
//! impl ProtocolNode for MinIdNode {
//!     fn round(&mut self, ctx: &mut RoundContext<'_>) {
//!         for env in ctx.inbox().to_vec() {
//!             let v = u32::from_le_bytes(env.payload[..4].try_into().unwrap());
//!             if v < self.best { self.best = v; self.changed = true; }
//!         }
//!         if self.changed {
//!             self.changed = false;
//!             self.quiet = false;
//!             let msg = self.best.to_le_bytes().to_vec();
//!             ctx.send_all(msg).unwrap();
//!         } else {
//!             self.quiet = true;
//!         }
//!     }
//!     fn is_done(&self) -> bool { self.quiet }
//!     fn output(&self) -> Option<Vec<u8>> { Some(self.best.to_le_bytes().to_vec()) }
//! }
//!
//! let g = generators::path(8);
//! let report = Engine::new(&g, EngineConfig::default())
//!     .run(&MinIdFlood)
//!     .unwrap();
//! // every node learned the minimum id, 0
//! for v in g.nodes() {
//!     assert_eq!(report.outputs[v.index()].as_deref(), Some(&0u32.to_le_bytes()[..]));
//! }
//! ```

#![warn(missing_docs)]

mod ctx;
mod engine;
mod error;
mod message;
mod node;
mod recorder;

pub mod trace;
pub mod util;

pub use ctx::RoundContext;
pub use engine::{Engine, EngineConfig, ExecutionReport};
pub use error::CongestError;
pub use message::{Envelope, Payload};
pub use node::{Protocol, ProtocolNode};
pub use recorder::{Recording, RoundRecord};
