//! Message payloads and envelopes.

use das_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Raw message contents. The engine enforces the CONGEST size limit
/// ([`crate::EngineConfig::message_bytes`]) at send time, so a `Payload` that
/// made it into an inbox is always within the model's bandwidth.
pub type Payload = Vec<u8>;

/// A delivered message: who sent it and what it carried.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope {
    /// The neighbor that sent this message (in the previous round).
    pub from: NodeId,
    /// The message contents.
    pub payload: Payload,
}

impl Envelope {
    /// Creates an envelope.
    pub fn new(from: NodeId, payload: Payload) -> Self {
        Envelope { from, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_roundtrip() {
        let e = Envelope::new(NodeId(3), vec![1, 2, 3]);
        assert_eq!(e.from, NodeId(3));
        assert_eq!(e.payload, vec![1, 2, 3]);
        let e2 = e.clone();
        assert_eq!(e, e2);
    }
}
