//! Engine edge cases: degenerate graphs, boundary message sizes, and
//! termination corners.

use das_congest::{Engine, EngineConfig, Protocol, ProtocolNode, RoundContext};
use das_graph::{generators, GraphBuilder, NodeId};

/// Sends one message of a configurable size to every neighbor, once.
struct OneShot {
    size: usize,
}
struct OneShotNode {
    size: usize,
    fired: bool,
}
impl Protocol for OneShot {
    fn create_node(&self, _id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
        Box::new(OneShotNode {
            size: self.size,
            fired: false,
        })
    }
}
impl ProtocolNode for OneShotNode {
    fn round(&mut self, ctx: &mut RoundContext<'_>) {
        if !self.fired {
            self.fired = true;
            let _ = ctx.send_all(vec![0u8; self.size]);
        }
    }
    fn is_done(&self) -> bool {
        self.fired
    }
}

#[test]
fn single_node_network_terminates_immediately() {
    let g = generators::path(1);
    let rep = Engine::new(&g, EngineConfig::default())
        .run(&OneShot { size: 1 })
        .unwrap();
    assert_eq!(rep.messages, 0);
    assert_eq!(rep.rounds, 1);
}

#[test]
fn disconnected_components_run_independently() {
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 1);
    b.add_edge(2, 3);
    let g = b.build();
    let rep = Engine::new(&g, EngineConfig::default())
        .run(&OneShot { size: 4 })
        .unwrap();
    assert_eq!(rep.messages, 4); // each endpoint fires once per component
}

#[test]
fn message_at_exact_size_limit_passes() {
    let g = generators::path(2);
    let cfg = EngineConfig::default().with_message_bytes(16);
    let rep = Engine::new(&g, cfg).run(&OneShot { size: 16 }).unwrap();
    assert_eq!(rep.messages, 2);
}

#[test]
fn message_one_byte_over_fails() {
    let g = generators::path(2);
    let cfg = EngineConfig::default().with_message_bytes(16);
    let err = Engine::new(&g, cfg).run(&OneShot { size: 17 }).unwrap_err();
    assert!(matches!(
        err,
        das_congest::CongestError::MessageTooLarge {
            size: 17,
            limit: 16,
            ..
        }
    ));
}

#[test]
fn fixed_zero_rounds_runs_nothing() {
    let g = generators::path(3);
    let cfg = EngineConfig::default().with_fixed_rounds(0);
    let rep = Engine::new(&g, cfg).run(&OneShot { size: 1 }).unwrap();
    assert_eq!(rep.rounds, 0);
    assert_eq!(rep.messages, 0);
    assert_eq!(rep.recording.rounds(), 0);
}

#[test]
fn star_hub_can_serve_every_spoke_in_one_round() {
    let g = generators::star(50);
    let rep = Engine::new(&g, EngineConfig::default())
        .run(&OneShot { size: 8 })
        .unwrap();
    // hub sends 49, each spoke sends 1
    assert_eq!(rep.messages, 98);
    assert!(rep.rounds <= 3);
}

#[test]
fn recording_edges_match_graph() {
    let g = generators::cycle(5);
    let rep = Engine::new(&g, EngineConfig::default())
        .run(&OneShot { size: 1 })
        .unwrap();
    assert_eq!(rep.recording.edge_count(), 5);
    assert_eq!(rep.recording.message_count(), rep.messages);
    // every edge used exactly twice (once per direction)
    assert!(rep.recording.edge_loads().iter().all(|&l| l == 2));
}

/// A protocol that declares its own round limit.
struct Limited;
struct LimitedNode;
impl Protocol for Limited {
    fn create_node(&self, _id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
        Box::new(LimitedNode)
    }
    fn round_limit(&self) -> Option<u64> {
        Some(3)
    }
}
impl ProtocolNode for LimitedNode {
    fn round(&mut self, ctx: &mut RoundContext<'_>) {
        ctx.send_all(vec![1]).unwrap(); // never terminates on its own
    }
}

#[test]
fn protocol_round_limit_overrides_engine_default() {
    let g = generators::path(2);
    let err = Engine::new(&g, EngineConfig::default())
        .run(&Limited)
        .unwrap_err();
    assert!(matches!(
        err,
        das_congest::CongestError::RoundLimitExceeded { limit: 3 }
    ));
}

/// The round context exposes consistent local knowledge.
struct Introspect;
struct IntrospectNode {
    ok: bool,
    t: u64,
}
impl Protocol for Introspect {
    fn create_node(&self, _id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
        Box::new(IntrospectNode { ok: true, t: 0 })
    }
}
impl ProtocolNode for IntrospectNode {
    fn round(&mut self, ctx: &mut RoundContext<'_>) {
        self.ok &= ctx.round() == self.t;
        self.ok &= ctx.degree() == ctx.neighbors().len();
        self.ok &= ctx.n() == 4;
        self.ok &= ctx.message_bytes() == 40;
        self.t += 1;
    }
    fn is_done(&self) -> bool {
        self.t >= 3
    }
    fn output(&self) -> Option<Vec<u8>> {
        Some(vec![self.ok as u8])
    }
}

#[test]
fn round_context_exposes_consistent_local_view() {
    let g = generators::cycle(4);
    let cfg = EngineConfig::default().with_fixed_rounds(3);
    let rep = Engine::new(&g, cfg).run(&Introspect).unwrap();
    for out in &rep.outputs {
        assert_eq!(out.as_deref(), Some(&[1u8][..]));
    }
}
