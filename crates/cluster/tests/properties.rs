//! Property-based tests of the clustering invariants (Lemma 4.2/4.3) on
//! random graphs.

use das_cluster::{
    boundary_distances_centralized, carve_layer_centralized, share_layer_centralized, CarveConfig,
    Clustering, LayerParams, ShareConfig,
};
use das_graph::{generators, traversal};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Carving invariants: every node is assigned, the winning center's
    /// ball covers it, and no smaller-keyed covering center exists.
    #[test]
    fn carving_is_min_label_ball_assignment(
        n in 10usize..40, seed in 0u64..1000, rate in 1.5f64..6.0
    ) {
        let g = generators::gnp_connected(n, 3.0 / n as f64, seed);
        let horizon = 20;
        let law = das_cluster::TruncatedExponential::new(rate, horizon);
        let params = LayerParams::generate(n, &law, horizon, seed + 1);
        let centers = carve_layer_centralized(&g, &params);
        for v in g.nodes() {
            let dist = traversal::bfs_distances(&g, v);
            let winner = centers[v.index()];
            // the winner covers v
            prop_assert!(dist[winner.index()].unwrap() <= params.radius[winner.index()]);
            // no covering center has a smaller key
            for w in g.nodes() {
                if dist[w.index()].unwrap() <= params.radius[w.index()] {
                    prop_assert!(params.key(winner) <= params.key(w));
                }
            }
        }
    }

    /// The certified contained radius really is contained: the ball stays
    /// inside the node's cluster.
    #[test]
    fn contained_radius_is_sound(n in 10usize..35, seed in 0u64..1000) {
        let g = generators::gnp_connected(n, 3.0 / n as f64, seed);
        let horizon = 16;
        let law = das_cluster::TruncatedExponential::new(3.0, horizon);
        let params = LayerParams::generate(n, &law, horizon, seed + 2);
        let centers = carve_layer_centralized(&g, &params);
        let contained = boundary_distances_centralized(&g, &centers, horizon);
        for v in g.nodes() {
            for u in traversal::ball(&g, v, contained[v.index()]) {
                prop_assert_eq!(centers[u.index()], centers[v.index()]);
            }
        }
    }

    /// Contained radii are 1-Lipschitz along edges (neighbors' certified
    /// radii differ by at most 1) — the property the private scheduler's
    /// cross-neighbor synchronization argument relies on.
    #[test]
    fn contained_radius_is_lipschitz(n in 10usize..35, seed in 0u64..1000) {
        let g = generators::gnp_connected(n, 3.0 / n as f64, seed);
        let horizon = 16;
        let law = das_cluster::TruncatedExponential::new(3.0, horizon);
        let params = LayerParams::generate(n, &law, horizon, seed + 3);
        let centers = carve_layer_centralized(&g, &params);
        let contained = boundary_distances_centralized(&g, &centers, horizon);
        for e in g.edges() {
            let (a, b) = g.endpoints(e);
            let (ca, cb) = (contained[a.index()] as i64, contained[b.index()] as i64);
            prop_assert!((ca - cb).abs() <= 1, "{a}:{ca} vs {b}:{cb}");
        }
    }

    /// Sharing gives every node exactly its own center's chunks.
    #[test]
    fn sharing_is_center_consistent(n in 10usize..30, seed in 0u64..500) {
        let g = generators::gnp_connected(n, 3.0 / n as f64, seed);
        let cfg = CarveConfig::for_dilation(&g, 1).with_num_layers(2);
        let cl = Clustering::carve_centralized(&g, &cfg, seed);
        let share_cfg = ShareConfig::for_graph(&g, cfg.horizon);
        let chunks = das_cluster::share::center_chunks(n, share_cfg.chunks, seed + 9);
        for layer in cl.layers() {
            let want = share_layer_centralized(layer, &chunks);
            let (got, _, delivered) =
                das_cluster::share::share_layer_distributed(&g, layer, &chunks, &share_cfg, 1);
            prop_assert!(delivered, "sharing under-delivered");
            prop_assert_eq!(&got, &want);
            // same-cluster members agree
            for v in g.nodes() {
                prop_assert_eq!(&got[v.index()], &chunks[layer.center[v.index()].index()]);
            }
        }
    }
}
