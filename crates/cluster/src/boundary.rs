//! Property (4) of Lemma 4.2: each node learns a radius around it that is
//! fully contained in its cluster, via a flood from cluster boundaries.

use das_congest::{util, Protocol, ProtocolNode, RoundContext};
use das_graph::{Graph, NodeId};
use std::collections::VecDeque;

const TAG_LABEL: u8 = 2;
const TAG_BOUNDARY: u8 = 3;

/// Centralized reference: for each node, the distance to the nearest
/// *boundary node* (a node with a neighbor in a different cluster), capped
/// at `cap`. A ball of this radius around the node is guaranteed to lie
/// inside the node's cluster; if no boundary exists (one big cluster) every
/// node gets `cap`.
pub fn boundary_distances_centralized(g: &Graph, center: &[NodeId], cap: u32) -> Vec<u32> {
    let n = g.node_count();
    assert_eq!(center.len(), n, "assignment sized for a different graph");
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    for v in g.nodes() {
        let boundary = g
            .neighbors(v)
            .iter()
            .any(|&(u, _)| center[u.index()] != center[v.index()]);
        if boundary {
            dist[v.index()] = 0;
            queue.push_back(v);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        if d >= cap {
            continue;
        }
        for &(u, _) in g.neighbors(v) {
            if dist[u.index()] == u32::MAX {
                dist[u.index()] = d + 1;
                queue.push_back(u);
            }
        }
    }
    dist.into_iter().map(|d| d.min(cap)).collect()
}

/// The distributed boundary-distance protocol.
///
/// Round 0: every node sends its cluster label to its neighbors.
/// Round 1: nodes seeing a different label mark themselves boundary and
/// start a flood; thereafter every node records the first round a boundary
/// message reaches it (distance = round − 1) and forwards once. Runs for
/// `cap + 2` rounds.
pub struct BoundaryProtocol {
    /// Per-node cluster key (label, center) from the carving.
    keys: Vec<(u64, u32)>,
    cap: u32,
}

impl BoundaryProtocol {
    /// Creates the protocol from a per-node center assignment and carving
    /// labels.
    pub fn new(center: &[NodeId], label_of_center: impl Fn(NodeId) -> u64, cap: u32) -> Self {
        let keys = center.iter().map(|&c| (label_of_center(c), c.0)).collect();
        BoundaryProtocol { keys, cap }
    }

    /// Engine rounds the protocol needs.
    pub fn rounds_needed(&self) -> u64 {
        self.cap as u64 + 2
    }
}

struct BoundaryNode {
    key: (u64, u32),
    cap: u32,
    dist: Option<u32>,
    forwarded: bool,
}

impl Protocol for BoundaryProtocol {
    fn create_node(&self, id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
        Box::new(BoundaryNode {
            key: self.keys[id.index()],
            cap: self.cap,
            dist: None,
            forwarded: false,
        })
    }
}

impl ProtocolNode for BoundaryNode {
    fn round(&mut self, ctx: &mut RoundContext<'_>) {
        let t = ctx.round();
        if t == 0 {
            let payload = util::encode(TAG_LABEL, &[self.key.0, self.key.1 as u64]);
            ctx.send_all(payload)
                .expect("label exchange fits the model");
            return;
        }
        if t == 1 {
            let foreign = ctx.inbox().iter().any(|env| {
                matches!(util::decode(&env.payload),
                         Some((TAG_LABEL, words)) if (words[0], words[1] as u32) != self.key)
            });
            if foreign {
                self.dist = Some(0);
                self.forwarded = true;
                ctx.send_all(util::encode(TAG_BOUNDARY, &[]))
                    .expect("boundary flood fits the model");
            }
            return;
        }
        let heard = ctx
            .inbox()
            .iter()
            .any(|env| util::peek_tag(&env.payload) == Some(TAG_BOUNDARY));
        if heard && self.dist.is_none() {
            self.dist = Some((t - 1) as u32);
        }
        if heard && !self.forwarded && t <= self.cap as u64 {
            self.forwarded = true;
            ctx.send_all(util::encode(TAG_BOUNDARY, &[]))
                .expect("boundary flood fits the model");
        }
    }

    fn output(&self) -> Option<Vec<u8>> {
        Some(util::encode(
            TAG_BOUNDARY,
            &[self.dist.unwrap_or(self.cap) as u64],
        ))
    }
}

/// Decodes a [`BoundaryProtocol`] output into the contained radius.
pub fn decode_boundary_output(payload: &[u8]) -> u32 {
    let (tag, words) = util::decode(payload).expect("boundary output is well-formed");
    assert_eq!(tag, TAG_BOUNDARY);
    words[0] as u32
}

/// Runs the distributed boundary protocol; returns (per-node contained
/// radius capped at `cap`, rounds used).
pub fn boundary_distances_distributed(
    g: &Graph,
    center: &[NodeId],
    labels: &[u64],
    cap: u32,
) -> (Vec<u32>, u64) {
    let proto = BoundaryProtocol::new(center, |c| labels[c.index()], cap);
    let cfg = das_congest::EngineConfig::default()
        .with_fixed_rounds(proto.rounds_needed())
        .with_record(false);
    let report = das_congest::Engine::new(g, cfg)
        .run(&proto)
        .expect("boundary protocol respects the model");
    let dists = report
        .outputs
        .iter()
        .map(|o| decode_boundary_output(o.as_ref().expect("every node outputs")).min(cap))
        .collect();
    (dists, report.rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_graph::generators;

    /// Two clusters split down the middle of a path.
    fn split_path(n: usize, split: usize) -> (Graph, Vec<NodeId>) {
        let g = generators::path(n);
        let center: Vec<NodeId> = (0..n)
            .map(|i| {
                if i < split {
                    NodeId(0)
                } else {
                    NodeId((n - 1) as u32)
                }
            })
            .collect();
        (g, center)
    }

    #[test]
    fn centralized_distances_on_split_path() {
        let (g, center) = split_path(8, 4);
        let d = boundary_distances_centralized(&g, &center, 10);
        // boundary nodes are 3 and 4
        assert_eq!(d, vec![3, 2, 1, 0, 0, 1, 2, 3]);
    }

    #[test]
    fn cap_applies() {
        let (g, center) = split_path(8, 4);
        let d = boundary_distances_centralized(&g, &center, 2);
        assert_eq!(d, vec![2, 2, 1, 0, 0, 1, 2, 2]);
    }

    #[test]
    fn single_cluster_has_no_boundary() {
        let g = generators::cycle(6);
        let center = vec![NodeId(0); 6];
        let d = boundary_distances_centralized(&g, &center, 7);
        assert_eq!(d, vec![7; 6]);
        let labels = vec![1u64; 6];
        let (dd, _) = boundary_distances_distributed(&g, &center, &labels, 7);
        assert_eq!(dd, d);
    }

    #[test]
    fn contained_ball_really_is_contained() {
        // property check on a random clustering
        let g = generators::gnp_connected(40, 0.07, 13);
        let law = crate::radius::TruncatedExponential::new(3.0, 20);
        let params = crate::carving::LayerParams::generate(40, &law, 20, 5);
        let center = crate::carving::carve_layer_centralized(&g, &params);
        let d = boundary_distances_centralized(&g, &center, 20);
        for v in g.nodes() {
            for u in das_graph::traversal::ball(&g, v, d[v.index()]) {
                assert_eq!(
                    center[u.index()],
                    center[v.index()],
                    "ball({v}, {}) leaks out of the cluster at {u}",
                    d[v.index()]
                );
            }
        }
    }

    #[test]
    fn distributed_matches_centralized() {
        for seed in 0..4u64 {
            let g = generators::gnp_connected(35, 0.08, seed);
            let law = crate::radius::TruncatedExponential::new(2.5, 16);
            let params = crate::carving::LayerParams::generate(35, &law, 16, seed + 100);
            let center = crate::carving::carve_layer_centralized(&g, &params);
            let want = boundary_distances_centralized(&g, &center, 16);
            let (got, rounds) = boundary_distances_distributed(&g, &center, &params.label, 16);
            assert_eq!(got, want, "seed {seed}");
            assert_eq!(rounds, 18);
        }
    }
}
