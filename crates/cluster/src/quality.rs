//! Measured quality of a clustering — the quantities Lemma 4.2 bounds.

use crate::layers::Clustering;
use das_graph::{traversal, Graph};

/// Aggregate quality metrics of a [`Clustering`] on its graph.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterQuality {
    /// Maximum over layers and clusters of the weak radius (distance in
    /// `G` from the center to the farthest member). Lemma 4.2 bounds the
    /// weak *diameter* by `O(dilation · log n)`, i.e. twice this.
    pub max_weak_radius: u32,
    /// Average number of clusters per layer.
    pub avg_clusters_per_layer: f64,
    /// Minimum over nodes of the number of layers whose cluster contains
    /// the node's dilation-ball (property (3) says `Θ(log n)` w.h.p.).
    pub min_covering_layers: usize,
    /// Average over nodes of the same count.
    pub avg_covering_layers: f64,
    /// Fraction of (node, layer) pairs where the node's dilation-ball is
    /// contained — the per-layer padding probability.
    pub padding_rate: f64,
}

/// Computes quality metrics; `dilation` is the ball radius that must be
/// padded.
pub fn measure(g: &Graph, clustering: &Clustering, dilation: u32) -> ClusterQuality {
    let n = g.node_count();
    let layers = clustering.layers();
    let mut max_weak_radius = 0u32;
    let mut total_clusters = 0usize;
    for layer in layers {
        let centers = layer.centers();
        total_clusters += centers.len();
        for &c in &centers {
            let dist = traversal::bfs_distances(g, c);
            for v in g.nodes() {
                if layer.center[v.index()] == c {
                    max_weak_radius =
                        max_weak_radius.max(dist[v.index()].expect("member reachable"));
                }
            }
        }
    }
    let mut min_cov = usize::MAX;
    let mut total_cov = 0usize;
    for v in g.nodes() {
        let cov = clustering.covering_layers(v, dilation).len();
        min_cov = min_cov.min(cov);
        total_cov += cov;
    }
    ClusterQuality {
        max_weak_radius,
        avg_clusters_per_layer: total_clusters as f64 / layers.len() as f64,
        min_covering_layers: min_cov,
        avg_covering_layers: total_cov as f64 / n as f64,
        padding_rate: total_cov as f64 / (n * layers.len()) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::CarveConfig;
    use das_graph::generators;

    #[test]
    fn metrics_on_grid() {
        let g = generators::grid(6, 6);
        let cfg = CarveConfig::for_dilation(&g, 2).with_num_layers(16);
        let cl = Clustering::carve_centralized(&g, &cfg, 3);
        let q = measure(&g, &cl, 2);
        assert!(q.max_weak_radius <= cfg.horizon);
        assert!(q.avg_clusters_per_layer >= 1.0);
        assert!(q.padding_rate > 0.15, "padding rate {}", q.padding_rate);
        assert!(q.avg_covering_layers >= 16.0 * 0.15);
        assert!(q.min_covering_layers <= q.avg_covering_layers.ceil() as usize);
    }

    #[test]
    fn singleton_clusters_pad_radius_zero_only() {
        // With rate ~0 radii collapse to 0 and every node is its own
        // cluster; only radius-0 balls are padded at interior nodes.
        let g = generators::path(6);
        let cfg = CarveConfig {
            dilation: 1,
            radius_rate: 0.001,
            horizon: 5,
            num_layers: 2,
        };
        let cl = Clustering::carve_centralized(&g, &cfg, 1);
        let q = measure(&g, &cl, 1);
        assert_eq!(q.max_weak_radius, 0);
        assert_eq!(q.min_covering_layers, 0);
        assert_eq!(q.avg_clusters_per_layer, 6.0);
    }
}
