//! Single-layer ball carving (Lemma 4.2): centralized reference and the
//! distributed smallest-label flood with fake initial hop-counts.

use crate::radius::TruncatedExponential;
use das_congest::{util, Protocol, ProtocolNode, RoundContext};
use das_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Message tag for carving floods.
const TAG_CARVE: u8 = 1;

/// The per-node random draws of one carving layer: a truncated-exponential
/// radius `r(u)` and a uniform label `ℓ(u)`.
///
/// Conceptually each node draws these privately; they are generated
/// centrally from a seed so that the distributed protocol and the
/// centralized reference can be run on identical draws.
#[derive(Clone, Debug)]
pub struct LayerParams {
    /// `r(u)` per node, clamped to the horizon.
    pub radius: Vec<u32>,
    /// `ℓ(u)` per node.
    pub label: Vec<u64>,
    /// The travel horizon `H = Θ(dilation · log n)`.
    pub horizon: u32,
}

impl LayerParams {
    /// Draws the layer's radii and labels.
    pub fn generate(n: usize, law: &TruncatedExponential, horizon: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let radius = (0..n).map(|_| law.sample(&mut rng).min(horizon)).collect();
        let label = (0..n).map(|_| rng.gen::<u64>()).collect();
        LayerParams {
            radius,
            label,
            horizon,
        }
    }

    /// The cluster priority key of node `u`: clusters are won by the
    /// smallest `(label, id)` pair (the id breaks the measure-zero ties).
    pub fn key(&self, u: NodeId) -> (u64, u32) {
        (self.label[u.index()], u.0)
    }
}

/// Centralized reference carving: node `v` joins the cluster of the center
/// `w` with the smallest `(label, id)` among all `w` with
/// `dist(v, w) ≤ r(w)`. Returns the center of each node.
///
/// Every node is always assigned (its own ball contains it).
pub fn carve_layer_centralized(g: &Graph, params: &LayerParams) -> Vec<NodeId> {
    let n = g.node_count();
    assert_eq!(params.radius.len(), n, "params sized for a different graph");
    let mut order: Vec<NodeId> = g.nodes().collect();
    order.sort_unstable_by_key(|&u| params.key(u));
    let mut center: Vec<Option<NodeId>> = vec![None; n];
    let mut dist = vec![u32::MAX; n];
    let mut stamp = vec![u32::MAX; n]; // last BFS that touched the node
    for (run, &w) in order.iter().enumerate() {
        let run = run as u32;
        let r = params.radius[w.index()];
        let mut queue = VecDeque::new();
        dist[w.index()] = 0;
        stamp[w.index()] = run;
        queue.push_back(w);
        while let Some(v) = queue.pop_front() {
            if center[v.index()].is_none() {
                center[v.index()] = Some(w);
            }
            let d = dist[v.index()];
            if d == r {
                continue;
            }
            for &(u, _) in g.neighbors(v) {
                if stamp[u.index()] != run {
                    stamp[u.index()] = run;
                    dist[u.index()] = d + 1;
                    queue.push_back(u);
                }
            }
        }
    }
    center
        .into_iter()
        .map(|c| c.expect("every node is covered by its own ball"))
        .collect()
}

/// The distributed carving flood of Lemma 4.2.
///
/// Each node `u` injects a message carrying its label with fake initial
/// hop-count `H − r(u)`; in round `i` every node forwards (to all
/// neighbors) the smallest-label message it knows whose hop-count is below
/// `i`, promoting its hop-count to `i` — so waiting costs range, and a
/// message can never escape its center's ball. After `H` rounds each node
/// outputs the smallest `(label, id)` it heard: its cluster center.
///
/// Run it with [`das_congest::Engine`] configured for
/// `fixed_rounds = H + 1`; outputs decode as `(label, center)` via
/// `decode_carve_output`.
pub struct CarvingProtocol {
    params: LayerParams,
}

impl CarvingProtocol {
    /// Creates the protocol for one layer's draws.
    pub fn new(params: LayerParams) -> Self {
        CarvingProtocol { params }
    }

    /// The number of engine rounds the protocol needs: `H + 1` (one extra
    /// round to absorb messages sent in round `H`).
    pub fn rounds_needed(&self) -> u64 {
        self.params.horizon as u64 + 1
    }
}

struct CarvingNode {
    /// Own (label, id) — competes for the cluster choice from round 0.
    own_key: (u64, u32),
    /// Own initial hop-count `H − r(v)`; the own message becomes eligible
    /// for forwarding only in paper rounds `i > own_hop`.
    own_hop: u32,
    /// Smallest (label, center) among *received* messages (always eligible:
    /// a received message carries a hop-count below the current round).
    best_received: Option<(u64, u32)>,
    horizon: u32,
    /// Smallest (label, center) forwarded so far; forwarding anything
    /// larger would be useless (receivers prefer smaller).
    forwarded: Option<(u64, u32)>,
}

impl Protocol for CarvingProtocol {
    fn create_node(&self, id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
        let r = self.params.radius[id.index()];
        let own_hop = self.params.horizon - r.min(self.params.horizon);
        Box::new(CarvingNode {
            own_key: (self.params.label[id.index()], id.0),
            own_hop,
            best_received: None,
            horizon: self.params.horizon,
            forwarded: None,
        })
    }
}

impl ProtocolNode for CarvingNode {
    fn round(&mut self, ctx: &mut RoundContext<'_>) {
        // Engine round t corresponds to the paper's round i = t + 1.
        let i = (ctx.round() + 1) as u32;
        for env in ctx.inbox() {
            if let Some((TAG_CARVE, words)) = util::decode(&env.payload) {
                let key = (words[1], words[2] as u32);
                if self.best_received.is_none_or(|b| key < b) {
                    self.best_received = Some(key);
                }
            }
        }
        if i > self.horizon {
            return; // absorption round only
        }
        // Candidate = smallest eligible message: received ones are always
        // eligible; the own injection only once its fake hop-count is past.
        let mut cand = self.best_received;
        if self.own_hop < i && cand.is_none_or(|c| self.own_key < c) {
            cand = Some(self.own_key);
        }
        if let Some((label, center)) = cand {
            if self.forwarded.is_none_or(|f| (label, center) < f) {
                self.forwarded = Some((label, center));
                let payload = util::encode(TAG_CARVE, &[i as u64, label, center as u64]);
                ctx.send_all(payload)
                    .expect("carving stays within the model");
            }
        }
    }

    fn output(&self) -> Option<Vec<u8>> {
        let best = match self.best_received {
            Some(b) if b < self.own_key => b,
            _ => self.own_key,
        };
        Some(util::encode(TAG_CARVE, &[best.0, best.1 as u64]))
    }
}

/// Decodes a [`CarvingProtocol`] node output into `(label, center)`.
pub fn decode_carve_output(payload: &[u8]) -> (u64, NodeId) {
    let (tag, words) = util::decode(payload).expect("carving output is well-formed");
    assert_eq!(tag, TAG_CARVE);
    (words[0], NodeId(words[1] as u32))
}

/// Runs the distributed carving on `g` and returns (per-node center,
/// rounds used).
pub fn carve_layer_distributed(
    g: &Graph,
    params: &LayerParams,
    engine_seed: u64,
) -> (Vec<NodeId>, u64) {
    let proto = CarvingProtocol::new(params.clone());
    let rounds = proto.rounds_needed();
    let cfg = das_congest::EngineConfig::default()
        .with_fixed_rounds(rounds)
        .with_record(false)
        .with_seed(engine_seed);
    let report = das_congest::Engine::new(g, cfg)
        .run(&proto)
        .expect("carving respects the CONGEST model");
    let centers = report
        .outputs
        .iter()
        .map(|o| decode_carve_output(o.as_ref().expect("every node outputs")).1)
        .collect();
    (centers, report.rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_graph::generators;

    fn params_for(g: &Graph, rate: f64, horizon: u32, seed: u64) -> LayerParams {
        let law = TruncatedExponential::new(rate, horizon);
        LayerParams::generate(g.node_count(), &law, horizon, seed)
    }

    #[test]
    fn centralized_assigns_everyone() {
        let g = generators::grid(6, 6);
        let params = params_for(&g, 3.0, 20, 1);
        let centers = carve_layer_centralized(&g, &params);
        assert_eq!(centers.len(), 36);
        // every assigned center's ball really covers the node (note: a
        // center does not necessarily belong to its own cluster)
        for v in g.nodes() {
            let c = centers[v.index()];
            let d = das_graph::traversal::bfs_distances(&g, c)[v.index()].unwrap();
            assert!(d <= params.radius[c.index()], "{v} outside ball of {c}");
        }
    }

    #[test]
    fn members_are_within_center_radius() {
        let g = generators::gnp_connected(50, 0.06, 5);
        let params = params_for(&g, 4.0, 30, 2);
        let centers = carve_layer_centralized(&g, &params);
        for v in g.nodes() {
            let c = centers[v.index()];
            let d = das_graph::traversal::bfs_distances(&g, c)[v.index()].unwrap();
            assert!(
                d <= params.radius[c.index()],
                "{v} at distance {d} from center {c} with radius {}",
                params.radius[c.index()]
            );
        }
    }

    #[test]
    fn winner_is_min_label_covering_ball() {
        let g = generators::path(12);
        let params = params_for(&g, 3.0, 15, 3);
        let centers = carve_layer_centralized(&g, &params);
        for v in g.nodes() {
            let dist = das_graph::traversal::bfs_distances(&g, v);
            let best = g
                .nodes()
                .filter(|w| dist[w.index()].unwrap() <= params.radius[w.index()])
                .min_by_key(|&w| params.key(w))
                .unwrap();
            assert_eq!(centers[v.index()], best, "node {v}");
        }
    }

    #[test]
    fn distributed_matches_centralized() {
        for (gi, g) in [
            generators::path(20),
            generators::grid(5, 6),
            generators::gnp_connected(40, 0.08, 9),
            generators::balanced_tree(31, 2),
        ]
        .iter()
        .enumerate()
        {
            for seed in 0..5u64 {
                let params = params_for(g, 3.0, 24, seed * 31 + gi as u64);
                let want = carve_layer_centralized(g, &params);
                let (got, rounds) = carve_layer_distributed(g, &params, 7);
                assert_eq!(got, want, "graph {gi} seed {seed}");
                assert_eq!(rounds, params.horizon as u64 + 1);
            }
        }
    }

    #[test]
    fn zero_radii_make_singletons() {
        let g = generators::path(5);
        let params = LayerParams {
            radius: vec![0; 5],
            label: vec![50, 40, 30, 20, 10],
            horizon: 10,
        };
        let centers = carve_layer_centralized(&g, &params);
        for v in g.nodes() {
            assert_eq!(centers[v.index()], v);
        }
        let (dist_centers, _) = carve_layer_distributed(&g, &params, 0);
        assert_eq!(dist_centers, centers);
    }

    #[test]
    fn huge_radius_smallest_label_takes_all() {
        let g = generators::cycle(9);
        let mut params = params_for(&g, 2.0, 20, 4);
        params.radius[3] = 20;
        params.label[3] = 0; // strictly smallest
        let centers = carve_layer_centralized(&g, &params);
        for v in g.nodes() {
            assert_eq!(centers[v.index()], NodeId(3));
        }
        let (dist_centers, _) = carve_layer_distributed(&g, &params, 0);
        assert_eq!(dist_centers, centers);
    }

    #[test]
    fn output_decodes() {
        let g = generators::path(3);
        let params = params_for(&g, 2.0, 8, 5);
        let proto = CarvingProtocol::new(params.clone());
        let cfg = das_congest::EngineConfig::default().with_fixed_rounds(proto.rounds_needed());
        let rep = das_congest::Engine::new(&g, cfg).run(&proto).unwrap();
        for v in g.nodes() {
            let (label, center) = decode_carve_output(rep.outputs[v.index()].as_ref().unwrap());
            assert_eq!(label, params.label[center.index()]);
        }
    }
}
