//! The truncated exponential radius distribution of Lemma 4.2.

use rand::Rng;

/// The radius law `Pr[r = z] ∝ e^{−z/R}` truncated at `cap`, used by the
/// ball-carving of Lemma 4.2 with `R = Θ(dilation)` and
/// `cap = H = Θ(dilation · log n)` (so that `Pr[r ≥ H] ≤ 1/n`, i.e. w.h.p.
/// every radius is below the horizon).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TruncatedExponential {
    rate: f64,
    cap: u32,
}

impl TruncatedExponential {
    /// Creates the law with scale `R = rate` (mean ≈ `R`) truncated at
    /// `cap`.
    ///
    /// # Panics
    /// Panics if `rate <= 0`.
    pub fn new(rate: f64, cap: u32) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        TruncatedExponential { rate, cap }
    }

    /// The scale parameter `R`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The truncation point.
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// Samples a radius: `min(⌊Exp(R)⌋, cap)` by inverse CDF.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let x = -self.rate * u.ln();
        (x.floor() as u64).min(self.cap as u64) as u32
    }

    /// `Pr[r = z]` (with all truncated mass on `cap`).
    pub fn pmf(&self, z: u32) -> f64 {
        let e = (-1.0 / self.rate).exp();
        if z < self.cap {
            e.powi(z as i32) * (1.0 - e)
        } else if z == self.cap {
            e.powi(z as i32)
        } else {
            0.0
        }
    }

    /// `Pr[r >= z]`.
    pub fn tail(&self, z: u32) -> f64 {
        if z > self.cap {
            0.0
        } else {
            (-1.0 / self.rate).exp().powi(z as i32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let d = TruncatedExponential::new(5.0, 40);
        let total: f64 = (0..=40).map(|z| d.pmf(z)).sum();
        assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
        assert_eq!(d.pmf(41), 0.0);
    }

    #[test]
    fn tail_matches_pmf() {
        let d = TruncatedExponential::new(3.0, 30);
        for z in 0..=30 {
            let from_pmf: f64 = (z..=30).map(|y| d.pmf(y)).sum();
            assert!((d.tail(z) - from_pmf).abs() < 1e-9);
        }
    }

    #[test]
    fn samples_within_cap_and_decay() {
        let d = TruncatedExponential::new(4.0, 25);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 26];
        let trials = 100_000;
        for _ in 0..trials {
            let z = d.sample(&mut rng);
            assert!(z <= 25);
            counts[z as usize] += 1;
        }
        // empirical frequencies track the pmf
        for z in 0..10 {
            let expect = d.pmf(z) * trials as f64;
            let got = counts[z as usize] as f64;
            assert!(
                (got - expect).abs() < 5.0 * expect.max(30.0).sqrt() + 0.02 * expect,
                "z={z}: got {got}, expected {expect}"
            );
        }
        // decaying: early buckets dominate late buckets
        assert!(counts[0] > counts[10]);
    }

    #[test]
    fn mean_is_about_rate() {
        let d = TruncatedExponential::new(8.0, 200);
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 50_000;
        let sum: u64 = (0..trials).map(|_| d.sample(&mut rng) as u64).sum();
        let mean = sum as f64 / trials as f64;
        // floor() shifts the mean down by ~0.5
        assert!((mean - 7.5).abs() < 0.3, "mean = {mean}");
    }

    #[test]
    fn truncation_bites() {
        let d = TruncatedExponential::new(100.0, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let capped = (0..1000).filter(|_| d.sample(&mut rng) == 3).count();
        assert!(capped > 800, "with huge rate most samples cap: {capped}");
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        TruncatedExponential::new(0.0, 5);
    }
}
