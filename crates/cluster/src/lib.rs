//! # das-cluster
//!
//! Ball-carving graph clustering and in-cluster randomness sharing — the
//! pre-computation machinery of the paper's private-randomness scheduler
//! (Lemmas 4.2 and 4.3).
//!
//! **Carving (Lemma 4.2).** Every node picks a truncated-exponential radius
//! `r(u)` and a random label `ℓ(u)`; node `v` joins the cluster of the
//! smallest-labeled node whose ball contains `v`. Distributedly this is a
//! smallest-label flood where each center's message starts with a *fake
//! initial hop-count* `H − r(u)`, so it can travel exactly `r(u)` more hops
//! — one message per node per round, `O(dilation · log n)` rounds per layer.
//! Repeating over `Θ(log n)` independent layers gives each node `Θ(log n)`
//! layers in which its whole dilation-ball lies inside one cluster (the
//! Bartal-style padding property), w.h.p.
//!
//! **Boundary detection (Lemma 4.2 property 4).** A short flood from
//! cluster-boundary nodes tells every node a radius around it that is fully
//! contained in its cluster.
//!
//! **Sharing (Lemma 4.3).** Each cluster center pipelines `Θ(log n)` chunks
//! of `Θ(log n)` random bits through its ball, smallest
//! `(hop, label, sub-label)` first, so every member of every cluster learns
//! its center's full `Θ(log² n)`-bit seed in `O(dilation · log n)` rounds
//! per layer.
//!
//! Both the honest distributed protocols (run on [`das_congest`], with round
//! counts) and fast centralized reference implementations (proven equal in
//! tests) are provided.
//!
//! ```
//! use das_cluster::{CarveConfig, Clustering};
//! use das_graph::generators;
//!
//! let g = generators::grid(8, 8);
//! let clustering = Clustering::carve_centralized(&g, &CarveConfig::for_dilation(&g, 2), 99);
//! assert_eq!(clustering.layers().len(), clustering.config().num_layers);
//! // each layer assigns every node to exactly one cluster
//! for layer in clustering.layers() {
//!     assert_eq!(layer.center.len(), g.node_count());
//! }
//! ```

#![warn(missing_docs)]

mod boundary;
mod carving;
mod layers;
mod radius;

pub mod quality;
pub mod share;

pub use boundary::{boundary_distances_centralized, BoundaryProtocol};
pub use carving::{
    carve_layer_centralized, carve_layer_distributed, decode_carve_output, CarvingProtocol,
    LayerParams,
};
pub use layers::{CarveConfig, Clustering, Layer};
pub use radius::TruncatedExponential;
pub use share::{share_layer_centralized, ShareConfig, SharedSeeds, SharingProtocol};
