//! Multi-layer clustering orchestration (Lemma 4.2 in full).

use crate::boundary::{boundary_distances_centralized, boundary_distances_distributed};
use crate::carving::{carve_layer_centralized, carve_layer_distributed, LayerParams};
use crate::radius::TruncatedExponential;
use das_congest::util::seed_mix;
use das_graph::{Graph, NodeId};

/// Parameters of the clustering: the radius law, the travel horizon, and
/// the number of independent layers.
#[derive(Clone, Debug)]
pub struct CarveConfig {
    /// The dilation `D` the clustering must pad for.
    pub dilation: u32,
    /// Scale `R = Θ(dilation)` of the truncated-exponential radius law.
    pub radius_rate: f64,
    /// Travel horizon `H = Θ(dilation · log n)`; also the weak-radius cap.
    pub horizon: u32,
    /// Number of independent layers, `Θ(log n)`.
    pub num_layers: usize,
}

impl CarveConfig {
    /// The paper's parameterization for a network `g` and a target
    /// dilation: rate `R = 4·max(1, D)`, horizon `H = ⌈R·(ln n + 1)⌉`, and
    /// `⌈3·log₂ n⌉` layers.
    pub fn for_dilation(g: &Graph, dilation: u32) -> Self {
        let n = g.node_count().max(2) as f64;
        let radius_rate = 4.0 * dilation.max(1) as f64;
        let horizon = (radius_rate * (n.ln() + 1.0)).ceil() as u32;
        let num_layers = (3.0 * n.log2()).ceil() as usize;
        CarveConfig {
            dilation,
            radius_rate,
            horizon,
            num_layers,
        }
    }

    /// Overrides the number of layers.
    pub fn with_num_layers(mut self, layers: usize) -> Self {
        self.num_layers = layers.max(1);
        self
    }

    /// Overrides the horizon.
    pub fn with_horizon(mut self, horizon: u32) -> Self {
        self.horizon = horizon;
        self
    }

    /// The radius law induced by the config.
    pub fn radius_law(&self) -> TruncatedExponential {
        TruncatedExponential::new(self.radius_rate, self.horizon)
    }
}

/// One clustering layer: a node-disjoint family of clusters.
#[derive(Clone, Debug)]
pub struct Layer {
    /// Per-node cluster center.
    pub center: Vec<NodeId>,
    /// Per-node label of its cluster (the center's carving label).
    pub label: Vec<u64>,
    /// Per-node certified contained radius: `ball(v, contained_radius[v])`
    /// lies inside `v`'s cluster (property (4) of Lemma 4.2).
    pub contained_radius: Vec<u32>,
    /// The random draws that produced this layer (centers need their radii
    /// again for the randomness-sharing flood).
    pub params: LayerParams,
}

impl Layer {
    /// Whether node `v` is the center of some cluster in this layer.
    ///
    /// Note that a center does not necessarily belong to its own cluster:
    /// the carving rule assigns every node (centers included) to the
    /// smallest-labeled ball covering it, which for `v` itself may be a
    /// ball other than `B(v)`.
    pub fn is_center(&self, v: NodeId) -> bool {
        self.center.contains(&v)
    }

    /// The distinct cluster centers of this layer.
    pub fn centers(&self) -> Vec<NodeId> {
        let mut cs: Vec<NodeId> = self.center.clone();
        cs.sort_unstable();
        cs.dedup();
        cs
    }
}

/// The full `Θ(log n)`-layer clustering of Lemma 4.2.
#[derive(Clone, Debug)]
pub struct Clustering {
    config: CarveConfig,
    layers: Vec<Layer>,
    /// CONGEST rounds consumed building it (measured when carved
    /// distributedly; the analytic cost of the same protocols when carved
    /// centrally).
    precompute_rounds: u64,
}

impl Clustering {
    /// Builds the clustering with the fast centralized reference
    /// implementations (bit-identical to the distributed protocols; see the
    /// cross-validation tests). `precompute_rounds` is set to the rounds
    /// the distributed protocols would use.
    pub fn carve_centralized(g: &Graph, config: &CarveConfig, seed: u64) -> Self {
        Self::carve(g, config, seed, false)
    }

    /// Builds the clustering by honestly running the distributed carving
    /// and boundary protocols on the CONGEST engine, measuring rounds.
    pub fn carve_distributed(g: &Graph, config: &CarveConfig, seed: u64) -> Self {
        Self::carve(g, config, seed, true)
    }

    fn carve(g: &Graph, config: &CarveConfig, seed: u64, distributed: bool) -> Self {
        let n = g.node_count();
        let law = config.radius_law();
        let mut layers = Vec::with_capacity(config.num_layers);
        let mut rounds = 0u64;
        for l in 0..config.num_layers {
            let params = LayerParams::generate(n, &law, config.horizon, seed_mix(seed, l as u64));
            let (center, carve_rounds) = if distributed {
                carve_layer_distributed(g, &params, seed_mix(seed, 1000 + l as u64))
            } else {
                (
                    carve_layer_centralized(g, &params),
                    config.horizon as u64 + 1,
                )
            };
            let (contained, boundary_rounds) = if distributed {
                boundary_distances_distributed(g, &center, &params.label, config.horizon)
            } else {
                (
                    boundary_distances_centralized(g, &center, config.horizon),
                    config.horizon as u64 + 2,
                )
            };
            rounds += carve_rounds + boundary_rounds;
            let label = center.iter().map(|c| params.label[c.index()]).collect();
            layers.push(Layer {
                center,
                label,
                contained_radius: contained,
                params,
            });
        }
        Clustering {
            config: config.clone(),
            layers,
            precompute_rounds: rounds,
        }
    }

    /// The layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The configuration used.
    pub fn config(&self) -> &CarveConfig {
        &self.config
    }

    /// CONGEST rounds consumed (or chargeable) for the carving.
    pub fn precompute_rounds(&self) -> u64 {
        self.precompute_rounds
    }

    /// Indices of the layers whose cluster around `v` certifiably contains
    /// `ball(v, radius)` — the layers `v` may adopt outputs from.
    pub fn covering_layers(&self, v: NodeId, radius: u32) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.contained_radius[v.index()] >= radius)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_graph::generators;

    #[test]
    fn config_defaults_scale() {
        let g = generators::grid(8, 8);
        let c = CarveConfig::for_dilation(&g, 3);
        assert_eq!(c.dilation, 3);
        assert!(c.radius_rate >= 12.0);
        assert!(c.horizon as f64 >= c.radius_rate);
        assert!(c.num_layers >= 18, "3·log2(64) = 18, got {}", c.num_layers);
    }

    #[test]
    fn layers_partition_nodes() {
        let g = generators::gnp_connected(30, 0.1, 21);
        let cfg = CarveConfig::for_dilation(&g, 2).with_num_layers(6);
        let cl = Clustering::carve_centralized(&g, &cfg, 77);
        assert_eq!(cl.layers().len(), 6);
        for layer in cl.layers() {
            // node-disjoint by construction (a map); labels match centers
            for v in g.nodes() {
                let c = layer.center[v.index()];
                assert!(layer.is_center(c));
                assert_eq!(layer.label[v.index()], layer.params.label[c.index()]);
            }
        }
    }

    #[test]
    fn centralized_equals_distributed() {
        let g = generators::gnp_connected(25, 0.12, 3);
        let cfg = CarveConfig::for_dilation(&g, 1)
            .with_num_layers(3)
            .with_horizon(14);
        let a = Clustering::carve_centralized(&g, &cfg, 5);
        let b = Clustering::carve_distributed(&g, &cfg, 5);
        for (la, lb) in a.layers().iter().zip(b.layers()) {
            assert_eq!(la.center, lb.center);
            assert_eq!(la.contained_radius, lb.contained_radius);
        }
        assert_eq!(a.precompute_rounds(), b.precompute_rounds());
    }

    #[test]
    fn precompute_rounds_formula() {
        let g = generators::path(10);
        let cfg = CarveConfig::for_dilation(&g, 1)
            .with_num_layers(4)
            .with_horizon(9);
        let cl = Clustering::carve_centralized(&g, &cfg, 1);
        // per layer: (H + 1) carving + (H + 2) boundary
        assert_eq!(cl.precompute_rounds(), 4 * ((9 + 1) + (9 + 2)));
    }

    #[test]
    fn padding_property_holds_often() {
        // Lemma 4.2 property (3): for each node, a constant fraction of
        // layers certifiably contain its dilation-ball.
        let g = generators::grid(7, 7);
        let dilation = 2;
        let cfg = CarveConfig::for_dilation(&g, dilation).with_num_layers(24);
        let cl = Clustering::carve_centralized(&g, &cfg, 11);
        for v in g.nodes() {
            let covered = cl.covering_layers(v, dilation).len();
            assert!(covered >= 2, "node {v} covered in only {covered}/24 layers");
        }
        // and on average a decent constant fraction
        let total: usize = g
            .nodes()
            .map(|v| cl.covering_layers(v, dilation).len())
            .sum();
        let avg = total as f64 / g.node_count() as f64;
        assert!(avg >= 5.0, "average covering layers {avg} too small");
    }

    #[test]
    fn weak_radius_bounded_by_horizon() {
        let g = generators::gnp_connected(40, 0.08, 8);
        let cfg = CarveConfig::for_dilation(&g, 2).with_num_layers(5);
        let cl = Clustering::carve_centralized(&g, &cfg, 9);
        for layer in cl.layers() {
            for v in g.nodes() {
                let c = layer.center[v.index()];
                let d = das_graph::traversal::bfs_distances(&g, c)[v.index()].unwrap();
                assert!(d <= cfg.horizon, "member {v} at distance {d} from center");
            }
        }
    }
}
