//! In-cluster randomness sharing (Lemma 4.3).
//!
//! Each cluster center owns `Θ(log n)` chunks of `Θ(log n)` random bits
//! (64-bit words here) — `Θ(log² n)` bits in total. The chunks flood the
//! center's ball with the same fake initial hop-count as the carving, but
//! *pipelined*: every round each node forwards the lexicographically
//! smallest `(hop, label, sub-label)` message it has not forwarded yet
//! (Lenzen's pipelining). After `H + Θ(#chunks)` rounds every node holds
//! its own center's complete seed.

use crate::layers::Layer;
use das_congest::{util, Protocol, ProtocolNode, RoundContext};
use das_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashSet};

const TAG_SHARE: u8 = 4;

/// Sharing parameters.
#[derive(Clone, Debug)]
pub struct ShareConfig {
    /// Chunks per cluster (`Θ(log n)`, 64 random bits each).
    pub chunks: usize,
    /// Travel horizon `H` (same as the carving horizon).
    pub horizon: u32,
    /// Extra rounds allowed for pipelining delays (`Θ(chunks)`).
    pub slack: u32,
}

impl ShareConfig {
    /// Default: `⌈log₂ n⌉` chunks, pipelining slack `2·chunks + 4`.
    pub fn for_graph(g: &Graph, horizon: u32) -> Self {
        let chunks = (g.node_count().max(2) as f64).log2().ceil() as usize;
        ShareConfig {
            chunks,
            horizon,
            slack: 2 * chunks as u32 + 4,
        }
    }

    /// Engine rounds the sharing protocol needs per layer.
    pub fn rounds_needed(&self) -> u64 {
        self.horizon as u64 + self.slack as u64 + 1
    }
}

/// The shared randomness each node ends up holding, per layer:
/// `seeds[layer][node]` is the chunk vector of that node's cluster center.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedSeeds {
    /// `[layer][node] -> chunks` (empty vec if undelivered).
    pub seeds: Vec<Vec<Vec<u64>>>,
    /// Total CONGEST rounds used (or chargeable) across layers.
    pub rounds: u64,
}

impl SharedSeeds {
    /// The seed bytes of node `v` in `layer` (chunks concatenated
    /// little-endian), for feeding a PRG.
    pub fn seed_bytes(&self, layer: usize, v: NodeId) -> Vec<u8> {
        self.seeds[layer][v.index()]
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .collect()
    }
}

/// Generates the chunk vector each node *would* publish as a center.
/// Deterministic in `(seed, node)` — this models each node's private
/// randomness, drawn before the protocol starts.
pub fn center_chunks(n: usize, chunks: usize, seed: u64) -> Vec<Vec<u64>> {
    (0..n)
        .map(|v| {
            let mut rng = StdRng::seed_from_u64(util::seed_mix(seed, v as u64));
            (0..chunks).map(|_| rng.gen()).collect()
        })
        .collect()
}

/// Centralized reference for one layer: every node simply receives its
/// center's chunks.
pub fn share_layer_centralized(layer: &Layer, chunks_of: &[Vec<u64>]) -> Vec<Vec<u64>> {
    layer
        .center
        .iter()
        .map(|c| chunks_of[c.index()].clone())
        .collect()
}

/// The distributed pipelined sharing protocol for one layer.
pub struct SharingProtocol {
    layer: Layer,
    chunks_of: Vec<Vec<u64>>,
    config: ShareConfig,
}

impl SharingProtocol {
    /// Creates the protocol. `chunks_of[v]` is the chunk vector node `v`
    /// would publish if it is a center.
    pub fn new(layer: Layer, chunks_of: Vec<Vec<u64>>, config: ShareConfig) -> Self {
        SharingProtocol {
            layer,
            chunks_of,
            config,
        }
    }
}

/// Pipelining priority key: `(label, sub-label)`. At every node, the
/// messages of its *own* cluster carry the globally smallest label among
/// all messages that can reach it (any message reaching `v` comes from a
/// ball covering `v`, and `v` joined the smallest-labeled such ball), so
/// with this order own-cluster chunks are never starved — Lenzen's
/// pipelining argument then bounds the delay by the number of chunks.
type MsgKey = (u64, u32);

struct SharingNode {
    /// My cluster's label — I keep chunks that carry it.
    my_label: u64,
    horizon: u32,
    /// Pending messages to forward: key -> (hop, chunk data). If several
    /// copies of a chunk arrive over different paths, the smallest
    /// hop-count (= most remaining range) is kept.
    pending: BTreeMap<MsgKey, (u32, u64)>,
    /// (label, sub) already forwarded — only then are later copies
    /// redundant.
    sent: HashSet<(u64, u32)>,
    /// Collected chunks of my own cluster: sub -> data.
    collected: BTreeMap<u32, u64>,
    chunk_count: u32,
}

impl Protocol for SharingProtocol {
    fn create_node(&self, id: NodeId, _n: usize, _deg: usize) -> Box<dyn ProtocolNode> {
        let my_label = self.layer.label[id.index()];
        let mut pending = BTreeMap::new();
        let mut collected = BTreeMap::new();
        if self.layer.is_center(id) {
            let r = self.layer.params.radius[id.index()].min(self.layer.params.horizon);
            let h0 = self.layer.params.horizon - r;
            let label = self.layer.params.label[id.index()];
            for (sub, &data) in self.chunks_of[id.index()].iter().enumerate() {
                pending.insert((label, sub as u32), (h0, data));
                if my_label == label {
                    collected.insert(sub as u32, data);
                }
            }
        }
        Box::new(SharingNode {
            my_label,
            horizon: self.config.horizon,
            pending,
            sent: HashSet::new(),
            collected,
            chunk_count: self.config.chunks as u32,
        })
    }
}

impl ProtocolNode for SharingNode {
    fn round(&mut self, ctx: &mut RoundContext<'_>) {
        // Engine round t is the paper's round i = t + 1 (as in the carving).
        let i = (ctx.round() + 1) as u32;
        for env in ctx.inbox() {
            if let Some((TAG_SHARE, words)) = util::decode(&env.payload) {
                let (hop, sub) = util::unpack2(words[0]);
                let label = words[1];
                let data = words[2];
                if label == self.my_label {
                    self.collected.entry(sub).or_insert(data);
                }
                if !self.sent.contains(&(label, sub)) {
                    let entry = self.pending.entry((label, sub)).or_insert((hop, data));
                    if hop < entry.0 {
                        *entry = (hop, data);
                    }
                }
            }
        }
        // Forward the smallest-keyed pending message whose hop-count allows
        // one more hop and whose "virtual time" has come (hop < i; only a
        // center's own injections can still be in the future).
        let key = self
            .pending
            .iter()
            .find(|&(_, &(hop, _))| hop < i && hop < self.horizon)
            .map(|(&k, _)| k);
        if let Some(key @ (label, sub)) = key {
            let (hop, data) = self.pending.remove(&key).expect("key just found");
            self.sent.insert(key);
            let payload = util::encode(TAG_SHARE, &[util::pack2(hop + 1, sub), label, data]);
            ctx.send_all(payload)
                .expect("sharing stays within the model");
        }
    }

    fn output(&self) -> Option<Vec<u8>> {
        let mut words = Vec::with_capacity(self.collected.len());
        for sub in 0..self.chunk_count {
            words.push(self.collected.get(&sub).copied().unwrap_or(u64::MAX));
        }
        Some(util::encode(TAG_SHARE, &words))
    }
}

/// Runs the distributed sharing for one layer; returns
/// `(per-node chunk vectors, rounds used, all_delivered)`.
pub fn share_layer_distributed(
    g: &Graph,
    layer: &Layer,
    chunks_of: &[Vec<u64>],
    config: &ShareConfig,
    engine_seed: u64,
) -> (Vec<Vec<u64>>, u64, bool) {
    let proto = SharingProtocol::new(layer.clone(), chunks_of.to_vec(), config.clone());
    let cfg = das_congest::EngineConfig::default()
        .with_fixed_rounds(config.rounds_needed())
        .with_record(false)
        .with_seed(engine_seed);
    let report = das_congest::Engine::new(g, cfg)
        .run(&proto)
        .expect("sharing respects the model");
    let mut all = true;
    let seeds = report
        .outputs
        .iter()
        .map(|o| {
            let (tag, words) = util::decode(o.as_ref().expect("every node outputs"))
                .expect("sharing output is well-formed");
            assert_eq!(tag, TAG_SHARE);
            if words.contains(&u64::MAX) {
                all = false;
            }
            words
        })
        .collect();
    (seeds, report.rounds, all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{CarveConfig, Clustering};
    use das_graph::generators;

    fn shared_on(g: &Graph, dilation: u32, seed: u64) -> bool {
        let cfg = CarveConfig::for_dilation(g, dilation).with_num_layers(3);
        let cl = Clustering::carve_centralized(g, &cfg, seed);
        let share_cfg = ShareConfig::for_graph(g, cfg.horizon);
        let chunks = center_chunks(g.node_count(), share_cfg.chunks, seed + 7);
        let mut ok = true;
        for layer in cl.layers() {
            let want = share_layer_centralized(layer, &chunks);
            let (got, rounds, delivered) =
                share_layer_distributed(g, layer, &chunks, &share_cfg, 3);
            ok &= delivered && got == want;
            assert_eq!(rounds, share_cfg.rounds_needed());
        }
        ok
    }

    #[test]
    fn delivery_on_small_graphs() {
        assert!(shared_on(&generators::path(12), 2, 1));
        assert!(shared_on(&generators::grid(5, 5), 2, 2));
        assert!(shared_on(&generators::gnp_connected(30, 0.1, 4), 1, 3));
        assert!(shared_on(&generators::balanced_tree(20, 3), 2, 4));
    }

    #[test]
    fn centralized_reference_matches_centers() {
        let g = generators::grid(4, 4);
        let cfg = CarveConfig::for_dilation(&g, 1).with_num_layers(2);
        let cl = Clustering::carve_centralized(&g, &cfg, 5);
        let chunks = center_chunks(16, 4, 9);
        for layer in cl.layers() {
            let seeds = share_layer_centralized(layer, &chunks);
            for v in g.nodes() {
                assert_eq!(seeds[v.index()], chunks[layer.center[v.index()].index()]);
                assert_eq!(seeds[v.index()].len(), 4);
            }
        }
    }

    #[test]
    fn center_chunks_deterministic_and_distinct() {
        let a = center_chunks(5, 3, 42);
        let b = center_chunks(5, 3, 42);
        assert_eq!(a, b);
        assert_ne!(a[0], a[1], "different nodes draw different chunks");
        let c = center_chunks(5, 3, 43);
        assert_ne!(a, c, "different seeds draw different chunks");
    }

    #[test]
    fn same_cluster_members_agree_on_seed() {
        let g = generators::gnp_connected(25, 0.15, 6);
        let cfg = CarveConfig::for_dilation(&g, 2).with_num_layers(2);
        let cl = Clustering::carve_centralized(&g, &cfg, 6);
        let share_cfg = ShareConfig::for_graph(&g, cfg.horizon);
        let chunks = center_chunks(25, share_cfg.chunks, 8);
        let layer = &cl.layers()[0];
        let (got, _, delivered) = share_layer_distributed(&g, layer, &chunks, &share_cfg, 1);
        assert!(delivered);
        for v in g.nodes() {
            for u in g.nodes() {
                if layer.center[v.index()] == layer.center[u.index()] {
                    assert_eq!(got[v.index()], got[u.index()]);
                }
            }
        }
    }

    #[test]
    fn seed_bytes_concatenation() {
        let seeds = SharedSeeds {
            seeds: vec![vec![vec![1u64, 2u64]]],
            rounds: 0,
        };
        let bytes = seeds.seed_bytes(0, NodeId(0));
        assert_eq!(bytes.len(), 16);
        assert_eq!(&bytes[..8], &1u64.to_le_bytes());
        assert_eq!(&bytes[8..], &2u64.to_le_bytes());
    }
}
