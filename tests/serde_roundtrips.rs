//! Serialization round-trips for the data-structure types (graphs,
//! patterns, recordings) — they are meant to be persisted and diffed
//! across experiment runs.

use dasched::congest::{Engine, EngineConfig};
use dasched::core::run_alone;
use dasched::core::synthetic::FloodBall;
use dasched::graph::{generators, Arc, Direction, EdgeId, NodeId};
use dasched::pattern::{CommPattern, TimedArc};

#[test]
fn graph_roundtrip_preserves_structure() {
    let g = generators::gnp_connected(30, 0.1, 7);
    let json = serde_json::to_string(&g).unwrap();
    let g2: dasched::graph::Graph = serde_json::from_str(&json).unwrap();
    assert_eq!(g.node_count(), g2.node_count());
    assert_eq!(g.edge_count(), g2.edge_count());
    for v in g.nodes() {
        assert_eq!(g.neighbors(v), g2.neighbors(v));
    }
    for e in g.edges() {
        assert_eq!(g.endpoints(e), g2.endpoints(e));
    }
}

#[test]
fn ids_and_arcs_roundtrip() {
    let items = (
        NodeId(7),
        EdgeId(3),
        Arc::new(EdgeId(5), Direction::Backward),
        TimedArc {
            round: 9,
            arc: Arc::new(EdgeId(1), Direction::Forward),
        },
    );
    let json = serde_json::to_string(&items).unwrap();
    let back: (NodeId, EdgeId, Arc, TimedArc) = serde_json::from_str(&json).unwrap();
    assert_eq!(items, back);
}

#[test]
fn comm_pattern_roundtrip() {
    let g = generators::grid(4, 4);
    let algo = FloodBall::new(0, &g, NodeId(5), 4);
    let pattern = run_alone(&g, &algo, 3).unwrap().pattern;
    let json = serde_json::to_string(&pattern).unwrap();
    let back: CommPattern = serde_json::from_str(&json).unwrap();
    assert_eq!(pattern, back);
    assert_eq!(pattern.edge_loads(), back.edge_loads());
}

#[test]
fn recording_roundtrip() {
    let g = generators::path(6);
    let proto = dasched::algos::flood::MinIdProtocol;
    let rec = Engine::new(&g, EngineConfig::default())
        .run(&proto)
        .unwrap()
        .recording;
    let json = serde_json::to_string(&rec).unwrap();
    let back: dasched::congest::Recording = serde_json::from_str(&json).unwrap();
    assert_eq!(rec, back);
}
