//! Cross-crate integration tests: the full pipeline from workload
//! construction through scheduling, verification, and causality checking.

use dasched::algos::bfs::HopBfs;
use dasched::algos::broadcast::SingleBroadcast;
use dasched::algos::coloring::Coloring;
use dasched::algos::flood::LeaderElection;
use dasched::algos::mst::{EdgeWeights, MstAlgorithm};
use dasched::core::synthetic::{FloodBall, RelayChain};
use dasched::core::{
    verify, BlackBoxAlgorithm, DasProblem, InterleaveScheduler, PrivateScheduler, Scheduler,
    SequentialScheduler, TunedUniformScheduler, UniformScheduler,
};
use dasched::graph::{generators, NodeId};
use dasched::pattern::verify_simulation;

fn mixed_problem(g: &dasched::graph::Graph, k: usize, seed: u64) -> DasProblem<'_> {
    let n = g.node_count() as u64;
    let algos: Vec<Box<dyn BlackBoxAlgorithm>> = (0..k as u64)
        .map(|i| {
            let src = NodeId(((i * 17 + 3) % n) as u32);
            match i % 6 {
                0 => Box::new(HopBfs::new(i, g, src, 6)) as Box<dyn BlackBoxAlgorithm>,
                1 => Box::new(SingleBroadcast::new(i, g, src, 6)),
                2 => Box::new(FloodBall::new(i, g, src, 5)),
                3 => Box::new(Coloring::new(i, g, 6)),
                4 => Box::new(LeaderElection::new(i, g, 7, seed + i)),
                _ => Box::new(MstAlgorithm::new(i, g, EdgeWeights::random(g, seed + i), 4)),
            }
        })
        .collect();
    DasProblem::new(g, algos, seed)
}

#[test]
fn every_scheduler_correct_on_mixed_grid_workload() {
    let g = generators::grid(7, 7);
    let problem = mixed_problem(&g, 8, 11);
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(SequentialScheduler),
        Box::new(InterleaveScheduler),
        Box::new(UniformScheduler::default()),
        Box::new(PrivateScheduler::default()),
    ];
    for s in schedulers {
        let outcome = s.run(&problem).unwrap();
        let report = verify::against_references(&problem, &outcome).unwrap();
        assert!(
            report.all_correct(),
            "{} mismatched {:?} (late {})",
            s.name(),
            report.mismatches,
            outcome.stats.late_messages
        );
    }
}

#[test]
fn scheduled_departures_are_causally_valid_simulations() {
    let g = generators::gnp_connected(40, 0.08, 3);
    let problem = mixed_problem(&g, 6, 5);
    let refs = problem.references().unwrap();
    for s in [
        Box::new(SequentialScheduler) as Box<dyn Scheduler>,
        Box::new(UniformScheduler::default()),
    ] {
        let outcome = s.run(&problem).unwrap();
        assert_eq!(outcome.stats.late_messages, 0, "{}", s.name());
        let deps = outcome.departures.as_ref().unwrap();
        for (i, map) in deps.iter().enumerate() {
            verify_simulation(&g, &refs[i].pattern, map)
                .unwrap_or_else(|e| panic!("{} algo {i}: {e}", s.name()));
        }
    }
}

#[test]
fn private_scheduler_works_across_topologies() {
    for (name, g) in [
        ("path", generators::path(30)),
        ("cycle", generators::cycle(30)),
        ("tree", generators::balanced_tree(31, 2)),
        ("expander", generators::random_regular_expander(40, 4, 9)),
    ] {
        let problem = mixed_problem(&g, 6, 23);
        let outcome = PrivateScheduler::default().run(&problem).unwrap();
        let report = verify::against_references(&problem, &outcome).unwrap();
        assert!(
            report.all_correct(),
            "{name}: mismatches {:?} late {}",
            report.mismatches,
            outcome.stats.late_messages
        );
        assert!(outcome.precompute_rounds > 0, "{name}: precompute charged");
    }
}

#[test]
fn schedulers_are_reproducible() {
    let g = generators::grid(6, 6);
    let problem = mixed_problem(&g, 6, 7);
    for s in [
        Box::new(UniformScheduler::default()) as Box<dyn Scheduler>,
        Box::new(TunedUniformScheduler::default()),
        Box::new(PrivateScheduler::default()),
    ] {
        let a = s.run(&problem).unwrap();
        let b = s.run(&problem).unwrap();
        assert_eq!(a.outputs, b.outputs, "{}", s.name());
        assert_eq!(a.schedule_rounds(), b.schedule_rounds(), "{}", s.name());
        assert_eq!(a.precompute_rounds, b.precompute_rounds, "{}", s.name());
    }
}

#[test]
fn congestion_and_dilation_grow_as_expected_with_k() {
    let g = generators::path(20);
    let p1 = DasProblem::new(
        &g,
        (0..3u64)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn BlackBoxAlgorithm>)
            .collect(),
        1,
    );
    let p2 = DasProblem::new(
        &g,
        (0..9u64)
            .map(|i| Box::new(RelayChain::new(i, &g)) as Box<dyn BlackBoxAlgorithm>)
            .collect(),
        1,
    );
    let a = p1.parameters().unwrap();
    let b = p2.parameters().unwrap();
    assert_eq!(a.dilation, b.dilation, "same algorithms, same dilation");
    assert_eq!(b.congestion, 3 * a.congestion, "congestion adds up");
}
