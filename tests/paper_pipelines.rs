//! Cross-section integration tests tying the paper's parts together:
//! §5 workloads under the Theorem 4.1 scheduler, and the §3 hard family
//! under every scheduler.

use dasched::algos::mst::{EdgeWeights, MstAlgorithm};
use dasched::core::{
    verify, BlackBoxAlgorithm, DasProblem, PrivateScheduler, Scheduler, SequentialScheduler,
    TunedUniformScheduler, UniformScheduler,
};
use dasched::graph::generators;
use dasched::lowerbound::{HardInstance, HardInstanceParams};

#[test]
fn kshot_mst_under_the_private_scheduler() {
    // the paper's two contributions composed: k MST instances with the
    // trade-off parameter tuned for k, scheduled with private randomness
    let g = generators::gnp_connected(40, 0.12, 4);
    let k = 3u64;
    let cap = ((40f64 / k as f64).sqrt()).ceil() as u32;
    let algos: Vec<Box<dyn BlackBoxAlgorithm>> = (0..k)
        .map(|i| {
            Box::new(MstAlgorithm::new(
                i,
                &g,
                EdgeWeights::random(&g, 70 + i),
                cap,
            )) as Box<dyn BlackBoxAlgorithm>
        })
        .collect();
    let p = DasProblem::new(&g, algos, 6);
    let outcome = PrivateScheduler::default().run(&p).unwrap();
    let report = verify::against_references(&p, &outcome).unwrap();
    assert!(
        report.all_correct(),
        "mismatches {:?} late {}",
        report.mismatches,
        outcome.stats.late_messages
    );
    assert!(outcome.precompute_rounds > 0);
}

#[test]
fn hard_instances_are_schedulable_by_everyone() {
    // the lower-bound family is still a legal DAS instance; every upper
    // bound must handle it correctly (just not quickly)
    let inst = HardInstance::sample(HardInstanceParams::custom(4, 24, 10, 0.2), 5);
    let p = DasProblem::new(inst.graph(), inst.algorithms(), 3);
    for s in [
        Box::new(SequentialScheduler) as Box<dyn Scheduler>,
        Box::new(UniformScheduler::default()),
        Box::new(TunedUniformScheduler::default()),
    ] {
        let outcome = s.run(&p).unwrap();
        let report = verify::against_references(&p, &outcome).unwrap();
        assert!(
            report.all_correct(),
            "{}: mismatches {:?} late {}",
            s.name(),
            report.mismatches,
            outcome.stats.late_messages
        );
    }
}

#[test]
fn tuned_scheduler_beats_uniform_on_the_hard_family() {
    // the §3 remark's point: on this family, log/loglog phases win
    let inst = HardInstance::sample(HardInstanceParams::custom(5, 48, 24, 4.0 / 24.0), 9);
    let p = DasProblem::new(inst.graph(), inst.algorithms(), 7);
    let uniform = UniformScheduler::default().run(&p).unwrap();
    let tuned = TunedUniformScheduler::default().run(&p).unwrap();
    assert!(
        verify::against_references(&p, &tuned)
            .unwrap()
            .all_correct(),
        "tuned late {}",
        tuned.stats.late_messages
    );
    assert!(
        tuned.schedule_rounds() < uniform.schedule_rounds(),
        "tuned {} vs uniform {}",
        tuned.schedule_rounds(),
        uniform.schedule_rounds()
    );
}

#[test]
fn mst_tradeoff_flips_the_scheduling_winner() {
    // with cap 0 (filter-upcast) dilation dominates; large fragments push
    // the work into congestion — the measured parameters must reflect it
    let g = generators::gnp_connected(60, 0.08, 8);
    let params_of = |cap: u32| {
        let algos: Vec<Box<dyn BlackBoxAlgorithm>> = vec![Box::new(MstAlgorithm::new(
            0,
            &g,
            EdgeWeights::random(&g, 1),
            cap,
        ))];
        DasProblem::new(&g, algos, 0).parameters().unwrap()
    };
    let flat = params_of(0);
    let frag = params_of(10);
    assert!(
        frag.congestion < flat.congestion,
        "fragments must cut congestion: {} vs {}",
        frag.congestion,
        flat.congestion
    );
}
