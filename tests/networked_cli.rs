//! Process-level networked execution: a real coordinator process plus
//! real worker processes (the CI `networked-equivalence` job's in-tree
//! twin), and a process-level fault: a coordinator with no workers must
//! exit nonzero with a typed timeout within its deadline.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn dasched() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dasched"))
}

const BASE: &[&str] = &[
    "--graph",
    "path:12",
    "--workload",
    "relays:3",
    "--seed",
    "9",
];

/// Waits on a child under a deadline, killing it on expiry so a protocol
/// hang fails the test instead of wedging the harness.
fn wait_bounded(mut child: Child, what: &str, deadline: Duration) -> std::process::Output {
    let started = Instant::now();
    loop {
        match child.try_wait().expect("try_wait") {
            Some(_) => return child.wait_with_output().expect("wait_with_output"),
            None if started.elapsed() > deadline => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("{what} did not finish within {deadline:?}");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Coordinator + N worker processes on localhost produce a
/// `--dump-outcome` byte-identical to the fused `plan --execute` dump.
#[test]
fn coordinator_and_workers_match_fused_dump_across_processes() {
    let dir = std::env::temp_dir().join("dasched_networked_process_test");
    std::fs::create_dir_all(&dir).unwrap();
    let fused_dump = dir.join("fused.txt");
    let fused = dasched()
        .args(["plan"])
        .args(BASE)
        .args(["--scheduler", "uniform", "--execute"])
        .args(["--dump-outcome", fused_dump.to_str().unwrap()])
        .output()
        .expect("run fused plan");
    assert!(fused.status.success(), "fused: {fused:?}");

    for workers in [1usize, 3] {
        let net_dump = dir.join(format!("networked_{workers}.txt"));
        // port 0 bind: read the chosen address off the coordinator's
        // first stdout line ("listening on ADDR")
        let mut coord = dasched()
            .args(["coordinator"])
            .args(BASE)
            .args(["--scheduler", "uniform"])
            .args(["--workers", &workers.to_string()])
            .args(["--listen", "127.0.0.1:0", "--timeout-ms", "30000"])
            .args(["--dump-outcome", net_dump.to_str().unwrap()])
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn coordinator");
        let addr = {
            let stdout = coord.stdout.take().expect("piped stdout");
            let mut reader = BufReader::new(stdout);
            let mut line = String::new();
            reader.read_line(&mut line).expect("read listen line");
            let addr = line
                .trim()
                .strip_prefix("listening on ")
                .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
                .to_string();
            // drain the rest of the pipe in the background so the
            // coordinator never blocks on a full pipe buffer
            std::thread::spawn(move || for _ in reader.lines() {});
            addr
        };
        let worker_procs: Vec<Child> = (0..workers)
            .map(|_| {
                dasched()
                    .args(["worker"])
                    .args(BASE)
                    .args(["--connect", &addr, "--timeout-ms", "30000"])
                    .stdout(Stdio::null())
                    .spawn()
                    .expect("spawn worker")
            })
            .collect();
        let coord_out = wait_bounded(coord, "coordinator", Duration::from_secs(60));
        assert!(coord_out.status.success(), "coordinator: {coord_out:?}");
        for w in worker_procs {
            let out = wait_bounded(w, "worker", Duration::from_secs(60));
            assert!(out.status.success(), "worker: {out:?}");
        }
        assert_eq!(
            std::fs::read_to_string(&fused_dump).unwrap(),
            std::fs::read_to_string(&net_dump).unwrap(),
            "{workers}-worker networked dump must match the fused dump"
        );
        std::fs::remove_file(net_dump).unwrap();
    }
    std::fs::remove_file(fused_dump).unwrap();
}

/// A coordinator whose workers never show up must exit nonzero with the
/// typed timeout message, within (a generous multiple of) its deadline.
#[test]
fn coordinator_without_workers_times_out_typed() {
    let started = Instant::now();
    let child = dasched()
        .args(["coordinator"])
        .args(BASE)
        .args(["--scheduler", "sequential"])
        .args(["--workers", "2"])
        .args(["--listen", "127.0.0.1:0", "--timeout-ms", "500"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn coordinator");
    let out = wait_bounded(child, "timed-out coordinator", Duration::from_secs(30));
    assert!(!out.status.success(), "a worker-less coordinator must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("timed out") && stderr.contains("0 of 2 joined"),
        "stderr must carry the typed timeout: {stderr}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(20),
        "the failure must be deadline-bounded"
    );
}
