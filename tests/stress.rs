//! Larger-scale stress tests. Run with `cargo test -- --ignored` (they
//! take seconds to minutes; the default suite stays fast).

use dasched::congest::{Engine, EngineConfig};
use dasched::core::synthetic::FloodBall;
use dasched::core::{verify, BlackBoxAlgorithm, DasProblem, Scheduler, UniformScheduler};
use dasched::graph::{generators, NodeId};

#[test]
#[ignore = "stress: ~1k-node engine run"]
fn engine_scales_to_thousand_nodes() {
    let g = generators::gnp_connected(1000, 0.006, 3);
    let proto = dasched::algos::flood::MinIdProtocol;
    let rep = Engine::new(&g, EngineConfig::default().with_record(false))
        .run(&proto)
        .unwrap();
    for out in &rep.outputs {
        assert_eq!(out.as_deref(), Some(&0u32.to_le_bytes()[..]));
    }
}

#[test]
#[ignore = "stress: 100 algorithms on 400 nodes"]
fn uniform_scheduler_handles_hundred_algorithms() {
    let g = generators::grid(20, 20);
    let algos: Vec<Box<dyn BlackBoxAlgorithm>> = (0..100u64)
        .map(|i| {
            Box::new(FloodBall::new(i, &g, NodeId((i * 37 % 400) as u32), 6))
                as Box<dyn BlackBoxAlgorithm>
        })
        .collect();
    let p = DasProblem::new(&g, algos, 7);
    let outcome = UniformScheduler::default().run(&p).unwrap();
    let report = verify::against_references(&p, &outcome).unwrap();
    assert!(
        report.correctness_rate() > 0.999,
        "rate {} late {}",
        report.correctness_rate(),
        outcome.stats.late_messages
    );
}

#[test]
#[ignore = "stress: private scheduler on 200 nodes"]
fn private_scheduler_on_two_hundred_nodes() {
    let g = generators::gnp_connected(200, 0.02, 5);
    let algos: Vec<Box<dyn BlackBoxAlgorithm>> = (0..20u64)
        .map(|i| {
            Box::new(FloodBall::new(i, &g, NodeId((i * 11 % 200) as u32), 4))
                as Box<dyn BlackBoxAlgorithm>
        })
        .collect();
    let p = DasProblem::new(&g, algos, 9);
    let outcome = dasched::core::PrivateScheduler::default().run(&p).unwrap();
    let report = verify::against_references(&p, &outcome).unwrap();
    assert!(
        report.all_correct(),
        "mismatches {:?} late {}",
        report.mismatches,
        outcome.stats.late_messages
    );
}
