//! Failure-injection tests: deliberately under-provisioned schedules must
//! *visibly* fail (late messages, output mismatches) — never silently
//! succeed. This is the contract that makes the measured success rates in
//! the experiments meaningful.

use dasched::core::synthetic::RelayChain;
use dasched::core::{
    verify, BlackBoxAlgorithm, DasProblem, Executor, ExecutorConfig, Scheduler,
    TunedUniformScheduler, UniformScheduler, Unit,
};
use dasched::graph::generators;

fn heavy_problem(g: &dasched::graph::Graph, k: usize) -> DasProblem<'_> {
    let algos = (0..k as u64)
        .map(|i| Box::new(RelayChain::new(i, g)) as Box<dyn BlackBoxAlgorithm>)
        .collect();
    DasProblem::new(g, algos, 3)
}

#[test]
fn zero_delays_collide_and_are_detected() {
    let g = generators::path(12);
    let p = heavy_problem(&g, 8);
    let units: Vec<Unit> = (0..8).map(|i| Unit::global(i, 0, 12)).collect();
    let seeds: Vec<u64> = (0..8).map(|i| p.algo_seed(i)).collect();
    let outcome = Executor::run(
        &g,
        p.algorithms(),
        &seeds,
        &units,
        &ExecutorConfig::default(),
    )
    .unwrap();
    assert!(outcome.stats.late_messages > 0);
    let report = verify::against_references(&p, &outcome).unwrap();
    assert!(!report.all_correct(), "collisions must corrupt outputs");
}

#[test]
fn too_short_phases_degrade_gracefully_and_visibly() {
    let g = generators::path(16);
    let p = heavy_problem(&g, 12);
    // phase factor far below the Chernoff requirement
    let starved = UniformScheduler {
        shared_seed: 1,
        phase_factor: 0.2,
        range_factor: 0.2,
        delay_range: None,
    };
    let outcome = starved.run(&p).unwrap();
    let report = verify::against_references(&p, &outcome).unwrap();
    // must either be outright wrong or have pushed messages late
    assert!(
        outcome.stats.late_messages > 0 || !report.all_correct(),
        "starved schedule cannot look clean"
    );

    // and the properly-provisioned scheduler fixes it
    let good = UniformScheduler::default().run(&p).unwrap();
    let good_report = verify::against_references(&p, &good).unwrap();
    assert!(good_report.all_correct());
}

#[test]
fn correctness_rate_degrades_monotonically_with_starvation() {
    let g = generators::path(16);
    let p = heavy_problem(&g, 10);
    let mut rates = Vec::new();
    for phase_factor in [0.1, 1.0, 3.0] {
        let s = TunedUniformScheduler {
            shared_seed: 5,
            phase_factor,
            range_factor: 1.0,
        };
        let outcome = s.run(&p).unwrap();
        let report = verify::against_references(&p, &outcome).unwrap();
        rates.push(report.correctness_rate());
    }
    assert!(
        rates[0] <= rates[2],
        "more phase budget cannot hurt: {rates:?}"
    );
    assert!(
        rates[2] > 0.9,
        "full budget should be near-perfect: {rates:?}"
    );
}

#[test]
fn late_messages_never_reach_machines() {
    // a schedule that forces lateness must count every dropped message
    let g = generators::path(10);
    let p = heavy_problem(&g, 6);
    let units: Vec<Unit> = (0..6).map(|i| Unit::global(i, 0, 10)).collect();
    let seeds: Vec<u64> = (0..6).map(|i| p.algo_seed(i)).collect();
    let outcome = Executor::run(
        &g,
        p.algorithms(),
        &seeds,
        &units,
        &ExecutorConfig::default(),
    )
    .unwrap();
    let refs = p.references().unwrap();
    let total_expected: u64 = refs.iter().map(|r| r.pattern.message_count() as u64).sum();
    // every reference message was either delivered in time or counted late
    // (the executor sends each exactly once thanks to dedup)
    assert_eq!(
        outcome.stats.delivered + outcome.stats.late_messages,
        total_expected,
        "conservation of messages"
    );
}
